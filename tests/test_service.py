"""Unit tests for the service façade's edge paths and plumbing.

The load/soak, property, chaos, and CLI suites cover the happy paths;
this file pins down the corners: lifecycle (submit-after-close, undrained
shutdown, idempotent close), submit-time validation, the batch-dispatch
failure containment, job-handle semantics, and the ``service.*`` tracer
stream.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    HarnessError,
    RunFailure,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.harness.runner import RunConfig, Runner
from repro.obs.tracer import Tracer
from repro.service import (
    ServiceConfig,
    ServiceStats,
    SimulationService,
)
from repro.service.jobs import as_run_config

FAST = RunConfig(benchmark="GC-citation", scheme="flat")
FAST2 = RunConfig(benchmark="MM-small", scheme="flat")


# ----------------------------------------------------------------------
# Request normalization and submit-time validation
# ----------------------------------------------------------------------
class TestRequestValidation:
    def test_as_run_config_passthrough_and_pairs(self):
        assert as_run_config(FAST) is FAST
        config = as_run_config(("GC-citation", "spawn"), seed=7)
        assert config == RunConfig(
            benchmark="GC-citation", scheme="spawn", seed=7
        )

    def test_as_run_config_rejects_garbage(self):
        with pytest.raises(HarnessError, match="requests must be"):
            as_run_config(42)
        with pytest.raises(HarnessError):
            as_run_config(("too", "many", "fields"))

    def test_malformed_requests_rejected_at_the_door(self):
        """An unknown benchmark/scheme raises before it can poison a
        batch — and before it is even counted as submitted."""

        async def _scenario():
            async with SimulationService(Runner()) as service:
                with pytest.raises(Exception) as bench_err:
                    await service.submit(("no-such-benchmark", "flat"))
                with pytest.raises(Exception) as scheme_err:
                    await service.submit(("GC-citation", "no-such-scheme"))
                return service.stats(), bench_err.value, scheme_err.value

        stats, bench_err, scheme_err = asyncio.run(_scenario())
        assert stats.submitted == 0
        assert stats.lost == 0
        assert "no-such-benchmark" in str(bench_err)
        assert "no-such-scheme" in str(scheme_err)


class TestServiceConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"deadline_ms": 0.0},
            {"deadline_ms": -5.0},
            {"inline_threshold_ms": -1.0},
            {"max_batch": 0},
            {"max_queue": 0},
        ],
    )
    def test_rejects_invalid_tunables(self, kwargs):
        with pytest.raises(HarnessError):
            ServiceConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.jobs == 2
        assert config.deadline_ms is None


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_submit_after_close_raises_service_closed(self):
        async def _scenario():
            service = SimulationService(Runner())
            async with service:
                pass
            with pytest.raises(ServiceClosed):
                await service.submit(FAST)
            with pytest.raises(ServiceClosed):
                await service.start()

        asyncio.run(_scenario())

    def test_close_is_idempotent(self):
        async def _scenario():
            service = SimulationService(Runner())
            await service.start()
            await service.close()
            await service.close()  # second close is a no-op

        asyncio.run(_scenario())

    def test_undrained_close_fails_stranded_handles(self):
        """close(drain=False) abandons the queue; every stranded handle
        must fail with the typed ServiceClosed, never hang."""

        async def _scenario():
            service = SimulationService(
                Runner(), config=ServiceConfig(jobs=1, max_batch=1)
            )
            await service.start()
            # Burst-submit without yielding: both jobs still queued.
            a = await service.submit(FAST)
            b = await service.submit(FAST2)
            await service.close(drain=False)
            results = await service.gather(
                [a, b], return_exceptions=True
            )
            return service.stats(), results

        stats, results = asyncio.run(_scenario())
        assert all(isinstance(r, ServiceClosed) for r in results)
        assert stats.failed == 2
        assert stats.lost == 0

    def test_drained_close_finishes_queued_work(self):
        async def _scenario():
            service = SimulationService(
                Runner(), config=ServiceConfig(jobs=1, max_batch=1)
            )
            await service.start()
            job = await service.submit(FAST)
            await service.close()  # drain=True default
            return service.stats(), await job

        stats, result = asyncio.run(_scenario())
        assert stats.completed == 1
        assert result.makespan > 0


# ----------------------------------------------------------------------
# Batch-dispatch failure containment
# ----------------------------------------------------------------------
def test_batch_level_failure_quarantines_batch_not_service():
    """If run_suite itself explodes, the batch is quarantined and the
    service keeps serving — the scheduler loop must never die."""

    def explode(*args, **kwargs):
        raise RuntimeError("pool exploded")

    async def _scenario():
        service = SimulationService(Runner())
        service._parallel.run_suite = explode
        async with service:
            a = await service.submit(FAST)
            b = await service.submit(FAST2)
            results = await service.gather([a, b], return_exceptions=True)
            # The service is still alive: restore the pool and serve on.
            del service._parallel.run_suite  # back to the real method
            c = await service.submit(("GC-citation", "spawn"))
            healthy = await c
        return service.stats(), results, healthy

    stats, results, healthy = asyncio.run(_scenario())
    assert all(isinstance(r, RunFailure) for r in results)
    assert all("batch dispatch failed" in str(r) for r in results)
    assert stats.quarantined == 2
    assert stats.failed == 2
    assert stats.completed == 1
    assert stats.lost == 0
    assert healthy.makespan > 0


# ----------------------------------------------------------------------
# Tracer stream
# ----------------------------------------------------------------------
def test_service_tracer_kinds_cover_every_route():
    tracer = Tracer()

    async def _scenario():
        service = SimulationService(
            Runner(),
            config=ServiceConfig(
                jobs=1, deadline_ms=1.0, inline_threshold_ms=50_000.0
            ),
            tracer=tracer,
        )
        async with service:
            first = await service.submit(FAST)  # bootstrap -> admit
            dup = await service.submit(FAST)  # -> coalesce
            await service.gather([first, dup])
            await service.submit(FAST)  # -> cache hit
            # Priced now: below the huge threshold -> inline.
            await service.submit(RunConfig("GC-citation", "flat", seed=2))
            # Price MM-small above the inline threshold, then push the
            # backlog past the 1ms deadline: the next submit sheds.
            service.model.observe("MM-small", "flat", 100.0)
            service.controller.backlog_seconds = 100.0
            service.controller.queue_depth = 1
            with pytest.raises(ServiceOverloaded):
                await service.submit(FAST2)
            service.controller.backlog_seconds = 0.0
            service.controller.queue_depth = 0

    asyncio.run(_scenario())
    kinds = {event.kind for event in tracer.events()}
    for expected in (
        "service.submit",
        "service.coalesce",
        "service.cache_hit",
        "service.admit",
        "service.inline",
        "service.shed",
        "service.batch",
        "service.complete",
    ):
        assert expected in kinds, f"missing tracer kind {expected}"
    shed = [e for e in tracer.events() if e.kind == "service.shed"]
    assert shed[0].args["verdict"] == "shed"
    assert shed[0].args["predicted_delay_s"] > shed[0].args["deadline_s"]


# ----------------------------------------------------------------------
# Stats ledger shape
# ----------------------------------------------------------------------
def test_stats_to_dict_is_flat_and_complete():
    payload = ServiceStats(submitted=3, completed=2, shed=1).to_dict()
    assert payload["submitted"] == 3
    assert payload["lost"] == 0
    assert payload["model"] == {}
    # Everything JSON-serializable, nothing nested but the model.
    import json

    json.dumps(payload)


def test_api_facade_round_trip():
    """repro.api serve/submit/gather wrap the service end to end."""
    from repro import api

    async def _scenario():
        async with api.serve(jobs=1) as service:
            job = await api.submit(service, ("GC-citation", "flat"))
            [result] = await api.gather(service, [job])
        return service.stats(), result

    stats, result = asyncio.run(_scenario())
    assert stats.completed == 1
    assert result.makespan > 0
    serial = Runner().run(RunConfig("GC-citation", "flat"))
    assert result.to_dict() == serial.to_dict()
