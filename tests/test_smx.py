"""Unit tests for the processor-sharing SMX model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import small_debug_gpu
from repro.sim.instances import CTAInstance, KernelInstance, PendingDecision
from repro.sim.kernel import ChildRequest, KernelSpec
from repro.sim.smx import SMX


def make_kernel():
    spec = KernelSpec(
        name="k", threads_per_cta=32, thread_items=np.ones(32, dtype=np.int64)
    )
    return KernelInstance(0, spec, stream_id=0, is_child=False)


def make_cta(work=100.0, issue=None, warps=1, threads=32, regs=512, shmem=0,
             decisions=None):
    issue = work if issue is None else issue
    return CTAInstance(
        make_kernel(),
        0,
        num_threads=threads,
        num_warps=warps,
        regs=regs,
        shmem=shmem,
        warp_total=[work] * warps,
        warp_issue=[issue] * warps,
        decisions=decisions,
    )


@pytest.fixture
def smx():
    return SMX(0, small_debug_gpu())


class TestResourceAccounting:
    def test_add_remove_tracks_usage(self, smx):
        cta = make_cta()
        smx.add(cta, 0.0)
        assert smx.used_threads == 32
        assert smx.used_regs == 512
        assert smx.num_resident == 1
        smx.remove(cta, 0.0)
        assert smx.used_threads == 0
        assert smx.num_resident == 0

    def test_can_fit_cta_slot_limit(self, smx):
        for _ in range(smx.config.max_ctas_per_smx):
            smx.add(make_cta(threads=8, regs=8), 0.0)
        assert not smx.can_fit(threads=8, regs=8, shmem=0)
        assert not smx.has_free_cta_slot

    def test_can_fit_thread_limit(self, smx):
        smx.add(make_cta(threads=smx.config.max_threads_per_smx), 0.0)
        assert not smx.can_fit(threads=1, regs=0, shmem=0)

    def test_can_fit_register_limit(self, smx):
        assert not smx.can_fit(threads=1, regs=smx.config.registers_per_smx + 1, shmem=0)

    def test_can_fit_shmem_limit(self, smx):
        assert not smx.can_fit(
            threads=1, regs=0, shmem=smx.config.shared_mem_per_smx + 1
        )

    def test_add_when_full_raises(self, smx):
        smx.add(make_cta(threads=smx.config.max_threads_per_smx), 0.0)
        with pytest.raises(SimulationError):
            smx.add(make_cta(), 0.0)

    def test_remove_foreign_cta_raises(self, smx):
        with pytest.raises(SimulationError):
            smx.remove(make_cta(), 0.0)


class TestProcessorSharing:
    def test_uncontended_cta_runs_at_full_rate(self, smx):
        cta = make_cta(work=100.0, issue=50.0)
        smx.add(cta, 0.0)
        assert smx.scale == 1.0
        assert smx.next_event_time(0.0) == pytest.approx(100.0)

    def test_oversubscription_slows_uniformly(self, smx):
        # Each CTA demands the full capacity; two of them halve the rate.
        ctas = [make_cta(work=100.0, warps=8) for _ in range(2)]
        for cta in ctas:
            cta.demand = smx.capacity  # force known demand
            smx.resident.append(cta)
            smx._total_demand += cta.demand
        assert smx.scale == pytest.approx(0.5)

    def test_advance_integrates_progress(self, smx):
        cta = make_cta(work=100.0)
        smx.add(cta, 0.0)
        smx.advance(40.0)
        assert cta.consumed == pytest.approx(40.0)
        assert cta.remaining == pytest.approx(60.0)

    def test_advance_clamps_at_total_work(self, smx):
        cta = make_cta(work=100.0)
        smx.add(cta, 0.0)
        smx.advance(500.0)
        assert cta.consumed == pytest.approx(100.0)

    def test_advance_backwards_raises(self, smx):
        smx.advance(10.0)
        with pytest.raises(SimulationError):
            smx.advance(5.0)

    def test_work_conservation_under_sharing(self, smx):
        """Summed progress rate never exceeds issue capacity."""
        ctas = [make_cta(work=1000.0, warps=4) for _ in range(4)]
        for cta in ctas:
            smx.add(cta, 0.0)
        smx.advance(100.0)
        consumed_issue = sum(c.demand * c.consumed for c in ctas)
        assert consumed_issue <= smx.capacity * 100.0 + 1e-6

    def test_pop_finished_detaches_done(self, smx):
        fast = make_cta(work=50.0)
        slow = make_cta(work=500.0)
        smx.add(fast, 0.0)
        smx.add(slow, 0.0)
        when = smx.next_event_time(0.0)
        finished = smx.pop_finished(when)
        assert finished == [fast]
        assert smx.resident == [slow]


class TestDecisionHorizon:
    def _with_decision(self, at):
        req = ChildRequest(name="c", items=4, cta_threads=32)
        return make_cta(
            work=100.0,
            decisions=[PendingDecision(at_consumed=at, warp=0, tid=0, request=req)],
        )

    def test_next_event_stops_at_decision(self, smx):
        smx.add(self._with_decision(30.0), 0.0)
        assert smx.next_event_time(0.0) == pytest.approx(30.0)

    def test_ctas_with_fired_decisions(self, smx):
        cta = self._with_decision(30.0)
        smx.add(cta, 0.0)
        smx.advance(30.0)
        assert smx.ctas_with_fired_decisions() == [cta]

    def test_decision_blocks_completion(self, smx):
        cta = self._with_decision(100.0)
        smx.add(cta, 0.0)
        smx.advance(100.0)
        assert smx.pop_finished(100.0) == []
        cta.pop_fired_decisions()
        assert smx.pop_finished(100.0) == [cta]

    def test_refresh_demand_adjusts_totals(self, smx):
        cta = make_cta(work=100.0, issue=50.0)
        smx.add(cta, 0.0)
        before = smx._total_demand
        cta.extend_thread(0, 0, 100.0, 100.0)
        smx.refresh_demand(cta, 0.0)
        assert smx._total_demand > before

    def test_empty_smx_has_no_events(self, smx):
        assert smx.next_event_time(0.0) is None

    def test_compute_utilization(self, smx):
        assert smx.compute_utilization == 0.0
        cta = make_cta(work=100.0, issue=100.0)
        smx.add(cta, 0.0)
        assert 0.0 < smx.compute_utilization <= 1.0
