"""Tests for graph generators and the Table I benchmark suite."""

import numpy as np
import pytest

from repro.errors import HarnessError, WorkloadError
from repro.sim.config import GPUConfig
from repro.sim.kernel import uses_dynamic_parallelism
from repro.workloads import TABLE1_NAMES, all_benchmarks, benchmark_names, get_benchmark
from repro.workloads.base import AddressAllocator, Benchmark, BenchmarkRegistry
from repro.workloads.graphs import (
    bfs_levels,
    citation_graph,
    coloring_rounds,
    graph500_graph,
    sssp_rounds,
)


class TestAddressAllocator:
    def test_regions_disjoint_and_aligned(self):
        alloc = AddressAllocator(alignment=128)
        a = alloc.alloc(100)
        b = alloc.alloc(300)
        assert a == 0
        assert b == 128
        assert alloc.alloc(1) == 128 + 384

    def test_rejects_bad_sizes(self):
        with pytest.raises(WorkloadError):
            AddressAllocator().alloc(0)
        with pytest.raises(WorkloadError):
            AddressAllocator(alignment=0)


class TestGraphGenerators:
    def test_citation_graph_structure(self):
        graph = citation_graph(num_vertices=500, edges_per_vertex=3, seed=1)
        assert graph.num_vertices == 500
        assert graph.num_edges > 0
        assert len(graph.indptr) == 501
        assert graph.indptr[-1] == graph.num_edges
        # Neighbour ids in range.
        assert graph.indices.min() >= 0
        assert graph.indices.max() < 500

    def test_citation_graph_is_symmetric(self):
        graph = citation_graph(num_vertices=300, edges_per_vertex=3, seed=2)
        edges = set()
        for v in range(graph.num_vertices):
            for u in graph.neighbors(v):
                edges.add((v, int(u)))
        assert all((u, v) in edges for (v, u) in edges)

    def test_citation_graph_has_hub_skew(self):
        graph = citation_graph(num_vertices=2000, edges_per_vertex=4, seed=1)
        degrees = graph.degrees
        assert degrees.max() > 8 * degrees.mean()

    def test_graph500_heavier_tail_than_citation(self):
        rmat = graph500_graph(scale=11, edge_factor=8, seed=1)
        pa = citation_graph(num_vertices=2048, edges_per_vertex=4, seed=1)
        rmat_skew = rmat.degrees.max() / max(rmat.degrees.mean(), 1)
        pa_skew = pa.degrees.max() / max(pa.degrees.mean(), 1)
        assert rmat_skew > pa_skew

    def test_graph500_deterministic_per_seed(self):
        a = graph500_graph(scale=10, edge_factor=4, seed=5)
        b = graph500_graph(scale=10, edge_factor=4, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_graph_generator_validation(self):
        with pytest.raises(WorkloadError):
            citation_graph(num_vertices=3, edges_per_vertex=5)
        with pytest.raises(WorkloadError):
            graph500_graph(scale=0)


class TestTraversals:
    @pytest.fixture(scope="class")
    def graph(self):
        return citation_graph(num_vertices=800, edges_per_vertex=3, seed=3)

    def test_bfs_levels_partition_component(self, graph):
        levels = bfs_levels(graph, source=0)
        seen = np.concatenate(levels)
        assert len(seen) == len(np.unique(seen))
        assert levels[0].tolist() == [0]

    def test_bfs_levels_are_adjacent(self, graph):
        levels = bfs_levels(graph, source=0)
        for prev, cur in zip(levels, levels[1:]):
            prev_set = set(prev.tolist())
            for v in cur:
                assert any(int(u) in prev_set for u in graph.neighbors(int(v)))

    def test_bfs_source_validation(self, graph):
        with pytest.raises(WorkloadError):
            bfs_levels(graph, source=-1)

    def test_sssp_rounds_start_at_source(self, graph):
        rounds = sssp_rounds(graph, source=0, seed=1)
        assert rounds[0].tolist() == [0]
        assert len(rounds) >= 2

    def test_sssp_reactivates_vertices(self, graph):
        rounds = sssp_rounds(graph, source=0, seed=1)
        total = sum(len(r) for r in rounds)
        unique = len(np.unique(np.concatenate(rounds)))
        assert total >= unique  # re-relaxation happens

    def test_coloring_rounds_shrink_to_empty(self, graph):
        rounds = coloring_rounds(graph, seed=1)
        sizes = [len(r) for r in rounds]
        assert sizes[0] == graph.num_vertices
        assert all(a > b for a, b in zip(sizes, sizes[1:]))


class TestRegistry:
    def test_table1_has_13_benchmarks(self):
        assert len(TABLE1_NAMES) == 13
        for name in TABLE1_NAMES:
            assert name in benchmark_names()

    def test_fig21_extra_benchmark_registered(self):
        assert get_benchmark("SA-elegans") is not None

    def test_unknown_benchmark_raises(self):
        with pytest.raises(HarnessError):
            get_benchmark("nope")

    def test_duplicate_registration_rejected(self):
        registry = BenchmarkRegistry()
        bench = get_benchmark("Mandel")
        registry.register(bench)
        with pytest.raises(HarnessError):
            registry.register(bench)


@pytest.mark.parametrize("name", TABLE1_NAMES)
class TestBenchmarkBuilds:
    def test_dp_variant_valid(self, name):
        bench = get_benchmark(name)
        app = bench.dp(seed=1)
        app.validate(GPUConfig())
        assert uses_dynamic_parallelism(app)
        assert app.flat_items > 0

    def test_flat_variant_valid(self, name):
        bench = get_benchmark(name)
        app = bench.flat(seed=1)
        app.validate(GPUConfig())
        assert not uses_dynamic_parallelism(app)

    def test_flat_and_dp_agree_on_total_work(self, name):
        bench = get_benchmark(name)
        assert bench.flat(seed=1).flat_items == bench.dp(seed=1).flat_items

    def test_cta_resize_applies(self, name):
        bench = get_benchmark(name)
        app = bench.dp(seed=1, cta_threads=128)
        sizes = {
            req.cta_threads
            for spec in app.kernels
            for reqs in spec.child_requests.values()
            for req in reqs
        }
        assert sizes == {128}

    def test_default_threshold_within_sweep_range(self, name):
        bench = get_benchmark(name)
        assert bench.default_threshold <= max(bench.sweep_thresholds)
