"""Tests for the optional per-SMX L1 layer (Table II's 16KB 4-way D-cache)."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import CacheConfig, GPUConfig, MemoryConfig
from repro.sim.engine import GPUSimulator
from repro.sim.memory import MemorySystem

from tests.conftest import make_flat_app


def l1_config(**kwargs) -> MemoryConfig:
    return MemoryConfig(l1_enabled=True, **kwargs)


class TestConfig:
    def test_l1_defaults_match_table2(self):
        mem = MemoryConfig()
        assert mem.l1.size_bytes == 16 * 1024
        assert mem.l1.associativity == 4
        assert not mem.l1_enabled

    def test_line_sizes_must_match(self):
        with pytest.raises(ConfigError):
            MemoryConfig(
                l1=CacheConfig(size_bytes=16 * 1024, line_bytes=64, associativity=4)
            )

    def test_latency_ordering_enforced(self):
        with pytest.raises(ConfigError):
            MemoryConfig(l1_hit_cycles=200, l2_hit_cycles=120)

    def test_two_level_stall_model(self):
        mem = MemoryConfig(l1_hit_cycles=20, l2_hit_cycles=100, dram_cycles=300, mlp=1.0)
        assert mem.stall_cycles_two_level(1.0, 0.0) == 20
        assert mem.stall_cycles_two_level(0.0, 1.0) == 100
        assert mem.stall_cycles_two_level(0.0, 0.0) == 300
        assert mem.stall_cycles_two_level(0.5, 0.5) == pytest.approx(
            0.5 * 20 + 0.25 * 100 + 0.25 * 300
        )

    def test_two_level_stall_validates_rates(self):
        with pytest.raises(ConfigError):
            MemoryConfig().stall_cycles_two_level(1.2, 0.0)


class TestMemorySystemL1:
    def test_requires_num_smx(self):
        with pytest.raises(ConfigError):
            MemorySystem(l1_config())

    def test_one_l1_per_smx(self):
        mem = MemorySystem(l1_config(), num_smx=4)
        assert len(mem.l1s) == 4

    def test_l1_hit_filters_l2(self):
        mem = MemorySystem(l1_config(), num_smx=2)
        mem.cta_access([(0, 256)], smx_index=0)
        l2_before = mem.l2.accesses
        # Re-access from the same SMX: L1 absorbs everything.
        mem.cta_access([(0, 256)], smx_index=0)
        assert mem.l2.accesses == l2_before
        assert mem.l1_hit_rate > 0

    def test_l1s_are_private_per_smx(self):
        mem = MemorySystem(l1_config(), num_smx=2)
        mem.cta_access([(0, 256)], smx_index=0)
        # A different SMX misses its own L1 but hits the shared L2.
        stall, l2_rate = mem.cta_access([(0, 256)], smx_index=1)
        assert l2_rate == 1.0
        assert mem.l1s[1].misses == 2

    def test_stall_lower_with_l1_hits(self):
        mem = MemorySystem(l1_config(mlp=1.0), num_smx=1)
        stall_cold, _ = mem.cta_access([(0, 256)], smx_index=0)
        stall_warm, _ = mem.cta_access([(0, 256)], smx_index=0)
        assert stall_warm < stall_cold
        assert stall_warm == pytest.approx(mem.config.l1_hit_cycles)

    def test_disabled_l1_ignores_smx_index(self):
        mem = MemorySystem(MemoryConfig(), num_smx=4)
        stall, rate = mem.cta_access([(0, 256)], smx_index=2)
        assert rate == 0.0  # cold L2
        assert mem.l1s == []


class TestEngineWithL1:
    def test_simulation_runs_and_reports_both_levels(self):
        config = GPUConfig(memory=l1_config())
        sim = GPUSimulator(config=config)
        result = sim.run(make_flat_app(threads=128, items=16))
        assert result.makespan > 0
        assert sim.memory.l1s  # L1s were built
        total_l1 = sum(c.accesses for c in sim.memory.l1s)
        assert total_l1 > 0

    def test_l1_does_not_change_scheme_ordering(self):
        """Enabling the L1 shifts cycles but keeps flat-vs-flat ordering."""
        light = make_flat_app(items=4, name="light")
        heavy = make_flat_app(items=40, name="heavy")
        config = GPUConfig(memory=l1_config())
        r_light = GPUSimulator(config=config).run(light)
        r_heavy = GPUSimulator(config=config).run(heavy)
        assert r_heavy.makespan > r_light.makespan
