"""Unit tests for the Grid Management Unit (streams, HWQs, dispatch order)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.config import small_debug_gpu
from repro.sim.gmu import GMU
from repro.sim.instances import KernelInstance, KernelState
from repro.sim.kernel import KernelSpec


def make_kernel(kid=0, stream=0, ctas=2):
    spec = KernelSpec(
        name=f"k{kid}",
        threads_per_cta=32,
        thread_items=np.ones(32 * ctas, dtype=np.int64),
    )
    return KernelInstance(kid, spec, stream_id=stream, is_child=False)


@pytest.fixture
def gmu():
    return GMU(small_debug_gpu())  # 4 HWQs


class TestBinding:
    def test_submit_binds_stream_and_activates_head(self, gmu):
        kernel = make_kernel()
        gmu.submit(kernel)
        assert kernel.state is KernelState.EXECUTING
        assert gmu.num_bound == 1

    def test_hwq_limit_enforced(self, gmu):
        kernels = [make_kernel(kid=i, stream=i) for i in range(6)]
        for kernel in kernels:
            gmu.submit(kernel)
        assert gmu.num_bound == 4
        assert gmu.num_waiting_streams == 2
        assert kernels[4].state is KernelState.PENDING

    def test_fcfs_binding_order(self, gmu):
        kernels = [make_kernel(kid=i, stream=i) for i in range(6)]
        for kernel in kernels:
            gmu.submit(kernel)
        executing = {k.kernel_id for k in gmu.executing_kernels()}
        assert executing == {0, 1, 2, 3}
        # Completing stream 0's kernel binds stream 4 (FCFS).
        self._finish(gmu, kernels[0])
        executing = {k.kernel_id for k in gmu.executing_kernels()}
        assert executing == {1, 2, 3, 4}

    @staticmethod
    def _finish(gmu, kernel):
        while kernel.has_undispatched_ctas:
            kernel.take_next_cta_index()
        gmu.on_kernel_complete(kernel)

    def test_same_stream_kernels_serialize(self, gmu):
        first = make_kernel(kid=0, stream=7)
        second = make_kernel(kid=1, stream=7)
        gmu.submit(first)
        gmu.submit(second)
        assert first.state is KernelState.EXECUTING
        assert second.state is KernelState.PENDING
        assert gmu.num_bound == 1
        self._finish(gmu, first)
        assert second.state is KernelState.EXECUTING

    def test_pending_kernel_counter(self, gmu):
        for i in range(3):
            gmu.submit(make_kernel(kid=i, stream=i))
        assert gmu.pending_kernels == 3
        assert gmu.peak_pending_kernels == 3


class TestDispatchIteration:
    def test_yields_only_kernels_with_ctas(self, gmu):
        kernel = make_kernel()
        gmu.submit(kernel)
        assert list(gmu.dispatchable_kernels()) == [kernel]
        kernel.take_next_cta_index()
        kernel.take_next_cta_index()
        assert list(gmu.dispatchable_kernels()) == []

    def test_round_robin_cursor_persists(self, gmu):
        a = make_kernel(kid=0, stream=0, ctas=4)
        b = make_kernel(kid=1, stream=1, ctas=4)
        gmu.submit(a)
        gmu.submit(b)
        first_pass = [k.kernel_id for k in gmu.dispatchable_kernels()]
        assert sorted(first_pass) == [0, 1]
        # Consuming only the first yield advances the cursor past it, so a
        # fresh iteration starts from the other stream.
        gen = gmu.dispatchable_kernels()
        first = next(gen)
        gen.close()
        second = next(gmu.dispatchable_kernels())
        assert first is not second


class TestCompletion:
    def test_complete_non_head_raises(self, gmu):
        first = make_kernel(kid=0, stream=3)
        second = make_kernel(kid=1, stream=3)
        gmu.submit(first)
        gmu.submit(second)
        with pytest.raises(SimulationError):
            gmu.on_kernel_complete(second)

    def test_complete_releases_hwq(self, gmu):
        kernel = make_kernel()
        gmu.submit(kernel)
        gmu.on_kernel_complete(kernel)
        assert gmu.num_bound == 0
        assert gmu.drained()
        assert kernel.state is KernelState.COMPLETE

    def test_suspension_releases_hwq_but_not_completion(self, gmu):
        kernel = make_kernel()
        gmu.submit(kernel)
        gmu.on_kernel_suspended(kernel)
        assert gmu.num_bound == 0
        assert kernel.state is KernelState.PENDING

    def test_suspension_lets_waiting_stream_in(self, gmu):
        kernels = [make_kernel(kid=i, stream=i) for i in range(5)]
        for kernel in kernels:
            gmu.submit(kernel)
        assert kernels[4].state is KernelState.PENDING
        gmu.on_kernel_suspended(kernels[0])
        assert kernels[4].state is KernelState.EXECUTING
