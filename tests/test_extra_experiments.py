"""Tests for extension experiments beyond the paper's evaluation."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, EXTRA_EXPERIMENTS
from repro.experiments.extra_policy_matrix import run as policy_matrix
from repro.harness.runner import Runner

SUBSET = ("GC-citation",)


@pytest.fixture(scope="module")
def runner():
    return Runner()


class TestRegistry:
    def test_extras_are_separate_from_paper_experiments(self):
        assert "policy-matrix" in EXTRA_EXPERIMENTS
        assert "policy-matrix" not in ALL_EXPERIMENTS


class TestPolicyMatrix:
    def test_columns_cover_all_mechanisms(self, runner):
        result = policy_matrix(runner, benchmarks=SUBSET)
        assert result.headers == [
            "benchmark",
            "Baseline-DP",
            "SPAWN",
            "DTBL",
            "Free Launch",
        ]
        assert result.rows[-1][0] == "GEOMEAN"

    def test_all_speedups_positive(self, runner):
        result = policy_matrix(runner, benchmarks=SUBSET)
        for row in result.rows:
            assert all(v > 0 for v in row[1:])

    def test_dtbl_dominates_baseline(self, runner):
        """At this scale, removing launch overhead always helps."""
        result = policy_matrix(runner, benchmarks=SUBSET)
        per = result.row_dict()
        name = SUBSET[0]
        assert per[name][3] >= per[name][1]  # DTBL >= Baseline-DP
