"""Tests for the Free Launch comparator policy (thread reuse)."""

import pytest

from repro.core.policies import DecisionKind, FreeLaunchPolicy, LaunchRequest
from repro.core.policies import AlwaysLaunchPolicy, NeverLaunchPolicy
from repro.errors import ConfigError
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator

from tests.conftest import make_dp_app


def request(items):
    return LaunchRequest(time=0.0, items=items, num_ctas=1, items_per_thread=1, depth=1)


def run(app, policy):
    return GPUSimulator(config=small_debug_gpu(), policy=policy).run(app)


class TestPolicy:
    def test_reuses_above_threshold(self):
        policy = FreeLaunchPolicy(10)
        assert policy.decide(request(11)) is DecisionKind.REUSE
        assert policy.decide(request(10)) is DecisionKind.SERIAL

    def test_default_threshold_reuses_everything(self):
        assert FreeLaunchPolicy().decide(request(1)) is DecisionKind.REUSE

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigError):
            FreeLaunchPolicy(-1)


class TestEngineReuse:
    def test_no_kernels_launched(self, dp_app):
        result = run(dp_app, FreeLaunchPolicy())
        assert result.stats.child_kernels_launched == 0
        assert result.stats.child_kernels_reused == 32
        # Only the root kernel exists.
        assert len(result.stats.kernels) == 1

    def test_work_stays_in_parent(self, dp_app):
        result = run(dp_app, FreeLaunchPolicy())
        assert result.stats.items_in_child == 0
        assert result.stats.items_in_parent == dp_app.flat_items

    def test_reuse_faster_than_serial_decline(self):
        """Spreading work over the CTA beats one thread looping over it."""
        app = make_dp_app(threads=64, child_every=16, child_items=2000)
        reuse = run(app, FreeLaunchPolicy())
        serial = run(make_dp_app(threads=64, child_every=16, child_items=2000),
                     NeverLaunchPolicy())
        assert reuse.makespan < serial.makespan

    def test_reuse_avoids_launch_overhead(self):
        """For tiny children, reuse beats paying A*x+b per launch."""
        app = make_dp_app(threads=256, child_every=1, child_items=8, base_items=2)
        reuse = run(make_dp_app(threads=256, child_every=1, child_items=8,
                                base_items=2), FreeLaunchPolicy())
        launch = run(app, AlwaysLaunchPolicy())
        assert reuse.makespan < launch.makespan

    def test_reuse_shares_accumulate(self):
        """Successive reused children extend the same parent CTA."""
        one = make_dp_app(threads=32, child_every=32, child_items=640)
        two = make_dp_app(threads=32, child_every=16, child_items=640)
        r_one = run(one, FreeLaunchPolicy())
        r_two = run(two, FreeLaunchPolicy())
        assert r_two.makespan > r_one.makespan

    def test_summary_reports_reuse(self, dp_app):
        result = run(dp_app, FreeLaunchPolicy())
        assert result.summary()["child_kernels_reused"] == 32
