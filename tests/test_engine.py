"""Integration tests for the GPU simulator engine on micro-applications."""

import numpy as np
import pytest

from repro.core.policies import (
    AlwaysLaunchPolicy,
    DTBLPolicy,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.errors import SimulationError
from repro.runtime.streams import PerParentCTAStream
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator
from repro.sim.kernel import Application, KernelSpec

from tests.conftest import make_dp_app, make_flat_app


def run(app, policy=None, config=None, **kwargs):
    sim = GPUSimulator(config=config or small_debug_gpu(), policy=policy, **kwargs)
    return sim.run(app), sim


class TestFlatExecution:
    def test_flat_app_completes(self, flat_app):
        result, sim = run(flat_app)
        assert result.makespan > 0
        assert sim._unfinished_kernels == 0
        assert result.stats.child_kernels_launched == 0
        assert result.stats.offload_fraction == 0.0

    def test_all_items_accounted(self, flat_app):
        result, _ = run(flat_app)
        assert result.stats.items_in_parent == flat_app.flat_items

    def test_more_work_takes_longer(self):
        small, _ = run(make_flat_app(items=4))
        large, _ = run(make_flat_app(items=40))
        assert large.makespan > small.makespan

    def test_heavy_thread_dominates_makespan(self):
        balanced, _ = run(make_flat_app(items=4))
        skewed, _ = run(make_flat_app(items=4, heavy_thread=0, heavy_items=4000))
        assert skewed.makespan > 5 * balanced.makespan

    def test_sequential_host_kernels(self):
        spec = make_flat_app().kernels[0]
        app = Application(name="two", kernels=[spec, spec], flat_items=0)
        single, _ = run(make_flat_app())
        double, _ = run(app)
        assert double.makespan > 1.5 * single.makespan

    def test_determinism(self, flat_app):
        a, _ = run(flat_app)
        b, _ = run(flat_app)
        assert a.makespan == b.makespan


class TestDynamicParallelism:
    def test_always_launch_spawns_children(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        assert result.stats.child_kernels_launched == 32
        assert result.stats.child_ctas_launched == 32
        assert result.stats.items_in_child == 32 * 32

    def test_never_launch_keeps_work_in_parent(self, dp_app):
        result, _ = run(dp_app, policy=NeverLaunchPolicy())
        assert result.stats.child_kernels_launched == 0
        assert result.stats.child_kernels_declined == 32
        assert result.stats.items_in_child == 0
        assert result.stats.items_in_parent == dp_app.flat_items

    def test_work_conserved_across_policies(self, dp_app):
        for policy in (AlwaysLaunchPolicy(), NeverLaunchPolicy(), SpawnPolicy()):
            result, _ = run(dp_app, policy=policy)
            total = result.stats.items_in_parent + result.stats.items_in_child
            assert total == dp_app.flat_items

    def test_launch_overhead_delays_children(self, dp_app):
        result, sim = run(dp_app, policy=AlwaysLaunchPolicy())
        launch = sim.config.launch
        for record in result.stats.kernels.values():
            if record.is_child:
                assert record.launch_overhead >= launch.base_cycles

    def test_threshold_policy_partitions(self):
        app = make_dp_app(child_items=64)
        result, _ = run(app, policy=StaticThresholdPolicy(64))
        assert result.stats.child_kernels_launched == 0
        result, _ = run(app, policy=StaticThresholdPolicy(63))
        assert result.stats.child_kernels_launched == 32

    def test_child_exec_times_recorded(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        times = result.stats.child_cta_exec_times
        assert len(times) == 32
        assert all(t > 0 for t in times)

    def test_metrics_drain_to_zero(self, dp_app):
        _, sim = run(dp_app, policy=AlwaysLaunchPolicy())
        assert sim.metrics.n == 0
        assert sim.metrics.current_concurrency == 0

    def test_parent_waits_for_children(self, dp_app):
        """The root kernel's completion is at least its children's last."""
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        root = result.stats.kernels[0]
        child_completions = [
            r.completion_time for r in result.stats.kernels.values() if r.is_child
        ]
        assert root.completion_time >= max(child_completions)

    def test_nested_children_complete(self):
        app = make_dp_app(nested=True, child_every=8)
        result, sim = run(app, policy=AlwaysLaunchPolicy())
        depths = {r.depth for r in result.stats.kernels.values()}
        assert depths == {0, 1, 2}
        assert sim._unfinished_kernels == 0

    def test_decision_at_fraction_defers_launch(self):
        early = make_dp_app(at_fraction=0.0, base_items=64)
        late = make_dp_app(at_fraction=1.0, base_items=64)
        r_early, _ = run(early, policy=AlwaysLaunchPolicy())
        r_late, _ = run(late, policy=AlwaysLaunchPolicy())
        first_early = min(r_early.stats.launch_times)
        first_late = min(r_late.stats.launch_times)
        assert first_late > first_early


class TestDTBL:
    def test_dtbl_children_bypass_launch_unit(self, dp_app):
        result, sim = run(dp_app, policy=DTBLPolicy(0))
        assert result.stats.child_kernels_launched == 32
        assert sim.launch_unit.kernels_submitted == 0

    def test_dtbl_latency_is_small(self, dp_app):
        result, sim = run(dp_app, policy=DTBLPolicy(0))
        for record in result.stats.kernels.values():
            if record.is_child:
                assert record.launch_overhead == pytest.approx(
                    sim.dtbl_coalesce_cycles
                )

    def test_dtbl_faster_than_kernel_launch_when_overhead_bound(self, dp_app):
        launched, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        coalesced, _ = run(dp_app, policy=DTBLPolicy(0))
        assert coalesced.makespan < launched.makespan


class TestResourceLimits:
    def test_hwq_limit_serializes_kernels(self):
        """More concurrent children than HWQs -> queuing latency appears."""
        app = make_dp_app(threads=64, child_every=1, child_items=64)
        result, sim = run(app, policy=AlwaysLaunchPolicy())
        waits = [
            r.queuing_latency
            for r in result.stats.kernels.values()
            if r.is_child and r.queuing_latency is not None
        ]
        assert max(waits) > 0

    def test_oversized_cta_rejected(self):
        app = make_flat_app(threads_per_cta=64, threads=64)
        config = small_debug_gpu().replace(max_threads_per_smx=32, max_warps_per_smx=1)
        with pytest.raises(Exception):
            GPUSimulator(config=config).run(app)

    def test_stream_policy_serialization_slows_children(self):
        app = make_dp_app(threads=64, child_every=1, child_items=64)
        per_child, _ = run(app, policy=AlwaysLaunchPolicy())
        per_parent, _ = run(
            app, policy=AlwaysLaunchPolicy(), stream_policy=PerParentCTAStream()
        )
        assert per_parent.makespan >= per_child.makespan

    def test_latency_hiding_validation(self):
        with pytest.raises(SimulationError):
            GPUSimulator(latency_hiding=0.0)
        with pytest.raises(SimulationError):
            GPUSimulator(latency_hiding=1.5)


class TestStatsConsistency:
    def test_every_kernel_has_complete_lifecycle(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        for record in result.stats.kernels.values():
            assert record.arrival_time is not None
            assert record.first_dispatch_time is not None
            assert record.completion_time is not None
            assert record.arrival_time <= record.first_dispatch_time
            assert record.first_dispatch_time <= record.completion_time

    def test_occupancy_bounded(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        assert 0.0 < result.stats.smx_occupancy <= 1.0

    def test_trace_is_time_ordered(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        times = [s.time for s in result.stats.trace]
        assert times == sorted(times)

    def test_launch_cdf_monotone(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        cdf = result.stats.launch_cdf()
        counts = [c for _, c in cdf]
        assert counts == sorted(counts)
        assert counts[-1] == result.stats.child_kernels_launched

    def test_summary_keys(self, dp_app):
        result, _ = run(dp_app, policy=AlwaysLaunchPolicy())
        summary = result.summary()
        for key in (
            "makespan",
            "child_kernels_launched",
            "smx_occupancy",
            "l2_hit_rate",
            "offload_fraction",
        ):
            assert key in summary
