"""Unit tests for the discrete-event core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        queue = EventQueue()
        order = []
        for tag in "abcde":
            queue.schedule(5.0, lambda t=tag: order.append(t))
        queue.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(42.5, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [42.5]
        assert queue.now == 42.5

    def test_schedule_in_is_relative(self):
        queue = EventQueue()
        times = []
        queue.schedule(10, lambda: queue.schedule_in(5, lambda: times.append(queue.now)))
        queue.run()
        assert times == [15]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        queue = EventQueue()
        ran = []
        event = queue.schedule(10, lambda: ran.append(1))
        event.cancel()
        queue.run()
        assert ran == []

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        first.cancel()
        assert queue.peek_time() == 20

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestRun:
    def test_run_returns_executed_count(self):
        queue = EventQueue()
        for i in range(5):
            queue.schedule(i, lambda: None)
        assert queue.run() == 5

    def test_events_scheduled_during_run_execute(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule_in(1, lambda: order.append("second"))

        queue.schedule(0, first)
        queue.run()
        assert order == ["first", "second"]

    def test_budget_exhaustion_raises(self):
        queue = EventQueue()

        def rearm():
            queue.schedule_in(1, rearm)

        queue.schedule(0, rearm)
        with pytest.raises(SimulationError):
            queue.run(max_events=100)

    def test_pop_on_empty_returns_none(self):
        assert EventQueue().pop() is None
