"""Unit tests for the discrete-event core."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(30, lambda: order.append("c"))
        queue.schedule(10, lambda: order.append("a"))
        queue.schedule(20, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        queue = EventQueue()
        order = []
        for tag in "abcde":
            queue.schedule(5.0, lambda t=tag: order.append(t))
        queue.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(42.5, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [42.5]
        assert queue.now == 42.5

    def test_schedule_in_is_relative(self):
        queue = EventQueue()
        times = []
        queue.schedule(10, lambda: queue.schedule_in(5, lambda: times.append(queue.now)))
        queue.run()
        assert times == [15]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        queue = EventQueue()
        ran = []
        event = queue.schedule(10, lambda: ran.append(1))
        event.cancel()
        queue.run()
        assert ran == []

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        first.cancel()
        assert queue.peek_time() == 20

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestRun:
    def test_run_returns_executed_count(self):
        queue = EventQueue()
        for i in range(5):
            queue.schedule(i, lambda: None)
        assert queue.run() == 5

    def test_events_scheduled_during_run_execute(self):
        queue = EventQueue()
        order = []

        def first():
            order.append("first")
            queue.schedule_in(1, lambda: order.append("second"))

        queue.schedule(0, first)
        queue.run()
        assert order == ["first", "second"]

    def test_budget_exhaustion_raises(self):
        queue = EventQueue()

        def rearm():
            queue.schedule_in(1, rearm)

        queue.schedule(0, rearm)
        with pytest.raises(SimulationError):
            queue.run(max_events=100)

    def test_pop_on_empty_returns_none(self):
        assert EventQueue().pop() is None


class TestDrainedFastPath:
    """The live-count check answers drained queues with zero heap ops."""

    def test_pop_leaves_cancelled_stragglers_untouched(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(5)]
        for event in events:
            event.cancel()
        # Below _COMPACT_MIN nothing compacts: 5 dead entries remain.
        assert len(queue._heap) == 5
        assert queue.pop() is None
        assert queue.peek_time() is None
        # The fast path answered from the counters; the heap was not
        # popped, scanned, or rebuilt.
        assert len(queue._heap) == 5
        assert queue._cancelled == 5
        assert len(queue) == 0

    def test_pop_still_skips_dead_entries_when_live_ones_remain(self):
        queue = EventQueue()
        dead = queue.schedule(1.0, lambda: None)
        live = queue.schedule(2.0, lambda: None)
        dead.cancel()
        assert queue.pop() is live
        assert queue._cancelled == 0

    def test_compaction_threshold_rebuilds_heap(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(64)]
        for event in events[:33]:  # 33 * 2 > 64 crosses the threshold
            event.cancel()
        assert queue._cancelled == 0  # compaction fired and reset it
        assert len(queue._heap) == 31
        assert len(queue) == 31
