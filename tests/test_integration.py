"""Cross-module integration tests: policies, schemes, and system behaviour.

These run the full simulator on micro-apps and one small real benchmark,
checking the *relationships* the paper's mechanism is built on rather than
absolute numbers.
"""

import pytest

from repro.core.policies import (
    AlwaysLaunchPolicy,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.harness.runner import RunConfig, Runner
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator
from repro.workloads import get_benchmark

from tests.conftest import make_dp_app

FAST = "GC-citation"


def run(app, policy, **kwargs):
    return GPUSimulator(config=small_debug_gpu(), policy=policy, **kwargs).run(app)


class TestThresholdMonotonicity:
    def test_higher_threshold_less_offload(self):
        app_builder = lambda: make_dp_app(threads=96, child_every=3, child_items=48)
        offloads = []
        launches = []
        for threshold in (0, 47, 48):
            result = run(app_builder(), StaticThresholdPolicy(threshold))
            offloads.append(result.stats.offload_fraction)
            launches.append(result.stats.child_kernels_launched)
        assert offloads[0] >= offloads[1] >= offloads[2]
        assert launches == [32, 32, 0]


class TestSpawnBehaviour:
    def test_spawn_launch_count_between_extremes(self):
        app = make_dp_app(threads=256, child_every=1, child_items=16, base_items=32)
        always = run(app, AlwaysLaunchPolicy()).stats.child_kernels_launched
        spawn = run(app, SpawnPolicy()).stats.child_kernels_launched
        never = run(app, NeverLaunchPolicy()).stats.child_kernels_launched
        assert never <= spawn <= always

    def test_spawn_throttles_tiny_children_on_real_benchmark(self):
        runner = Runner()
        base = runner.run(RunConfig(benchmark=FAST, scheme="baseline-dp"))
        spawn = runner.run(RunConfig(benchmark=FAST, scheme="spawn"))
        assert (
            spawn.stats.child_kernels_launched
            < base.stats.child_kernels_launched
        )
        # Throttling must not lose work.
        total_base = base.stats.items_in_parent + base.stats.items_in_child
        total_spawn = spawn.stats.items_in_parent + spawn.stats.items_in_child
        assert total_base == total_spawn

    def test_spawn_beats_baseline_on_real_benchmark(self):
        runner = Runner()
        base = runner.run(RunConfig(benchmark=FAST, scheme="baseline-dp"))
        spawn = runner.run(RunConfig(benchmark=FAST, scheme="spawn"))
        assert spawn.makespan < base.makespan


class TestOverheadRelationships:
    def test_launch_storm_slows_execution(self):
        """Launching many tiny children costs more than it parallelizes."""
        app = make_dp_app(threads=256, child_every=1, child_items=8, base_items=2)
        launched = run(app, AlwaysLaunchPolicy())
        declined = run(app, NeverLaunchPolicy())
        assert launched.makespan > declined.makespan

    def test_offload_helps_heavy_imbalance(self):
        """Launching a few heavyweight children beats serializing them."""
        app = make_dp_app(threads=64, child_every=16, child_items=4000, base_items=2)
        launched = run(app, AlwaysLaunchPolicy())
        declined = run(app, NeverLaunchPolicy())
        assert launched.makespan < declined.makespan

    def test_queuing_latency_grows_with_kernel_count(self):
        few = make_dp_app(threads=64, child_every=8, child_items=32)
        many = make_dp_app(threads=512, child_every=1, child_items=32)
        r_few = run(few, AlwaysLaunchPolicy())
        r_many = run(many, AlwaysLaunchPolicy())
        assert (
            r_many.stats.mean_child_queuing_latency
            >= r_few.stats.mean_child_queuing_latency
        )


class TestCacheLocality:
    def test_delayed_children_lose_locality(self):
        """More concurrent children -> more L2 contention -> lower hit rate."""
        calm = make_dp_app(threads=64, child_every=8, child_items=64)
        stormy = make_dp_app(threads=512, child_every=1, child_items=64)
        r_calm = run(calm, AlwaysLaunchPolicy())
        r_stormy = run(stormy, AlwaysLaunchPolicy())
        assert r_calm.stats.l2_hit_rate >= r_stormy.stats.l2_hit_rate - 0.05


class TestSeeds:
    def test_different_seeds_change_inputs(self):
        bench = get_benchmark(FAST)
        a = bench.dp(seed=1)
        b = bench.dp(seed=2)
        items_a = [int(spec.thread_items.sum()) for spec in a.kernels]
        items_b = [int(spec.thread_items.sum()) for spec in b.kernels]
        assert items_a != items_b

    def test_same_seed_reproduces(self):
        runner_a = Runner()
        runner_b = Runner()
        ra = runner_a.run(RunConfig(benchmark=FAST, scheme="baseline-dp", seed=3))
        rb = runner_b.run(RunConfig(benchmark=FAST, scheme="baseline-dp", seed=3))
        assert ra.makespan == rb.makespan
