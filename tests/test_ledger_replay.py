"""Tests for the request ledger and record/replay load testing.

The determinism contract under test (ISSUE 6): a recorded serve run,
replayed at *any* speed, must reproduce every simulation result
bit-identically — only the measured wall-clock latencies may differ,
and those are what the replay budgets judge.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.cli import main
from repro.errors import HarnessError, ReplayBudgetExceeded
from repro.harness.runner import Runner
from repro.service import (
    LedgerEntry,
    ReplayBudgets,
    RequestLedger,
    ServiceConfig,
    SimulationService,
    TrafficRequest,
    drive_service,
    replay_ledger,
)
from repro.service.ledger import COMPLETED, FAILED, SHED, ReplayReport


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def _requests(n=6, gap=0.0):
    """Small deterministic burst over one cheap benchmark, varied seeds."""
    return [
        TrafficRequest(
            benchmark="MM-small",
            scheme="spawn" if i % 2 else "flat",
            seed=1 + i % 3,
            at=i * gap,
        )
        for i in range(n)
    ]


def _record(requests, **config_kwargs):
    """Drive a fresh service over ``requests``; return the ledger."""

    async def _drive():
        service = SimulationService(
            Runner(), config=ServiceConfig(jobs=2, **config_kwargs)
        )
        async with service:
            entries = await drive_service(service, requests)
        return entries

    return RequestLedger(entries=asyncio.run(_drive()))


# ----------------------------------------------------------------------
# Entries and files
# ----------------------------------------------------------------------
class TestLedgerEntry:
    def test_rejects_unknown_outcome(self):
        with pytest.raises(HarnessError):
            LedgerEntry(
                benchmark="MM-small", scheme="flat", seed=1, at=0.0,
                outcome="exploded",
            )

    def test_fingerprint_excludes_measured_latency(self):
        kwargs = dict(
            benchmark="MM-small", scheme="flat", seed=1, at=0.25,
            outcome=COMPLETED, makespan=1234.5,
        )
        fast = LedgerEntry(latency_s=0.001, **kwargs)
        slow = LedgerEntry(latency_s=9.0, **kwargs)
        assert fast.fingerprint() == slow.fingerprint()

    def test_dict_round_trip_preserves_float_makespan(self):
        entry = LedgerEntry(
            benchmark="MM-small", scheme="spawn", seed=2, at=0.5,
            outcome=COMPLETED, makespan=261166.9704142012, latency_s=0.01,
        )
        clone = LedgerEntry.from_dict(json.loads(json.dumps(entry.to_dict())))
        assert clone == entry
        assert clone.makespan == entry.makespan  # bit-exact through JSON

    def test_request_reconstruction(self):
        entry = LedgerEntry(
            benchmark="BFS-graph500", scheme="spawn", seed=3, at=1.5,
            outcome=SHED,
        )
        request = entry.request()
        assert request == TrafficRequest(
            benchmark="BFS-graph500", scheme="spawn", seed=3, at=1.5
        )


class TestLedgerFile:
    def _ledger(self):
        return RequestLedger(entries=[
            LedgerEntry(benchmark="MM-small", scheme="flat", seed=1, at=0.0,
                        outcome=COMPLETED, makespan=100.0, latency_s=0.01),
            LedgerEntry(benchmark="MM-small", scheme="spawn", seed=2, at=0.1,
                        outcome=FAILED, latency_s=0.02),
            LedgerEntry(benchmark="MM-small", scheme="spawn", seed=3, at=0.2,
                        outcome=SHED, latency_s=0.0),
        ])

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        original = self._ledger()
        original.write(path)
        loaded = RequestLedger.read(path)
        assert loaded.entries == original.entries
        assert loaded.fingerprint() == original.fingerprint()

    def test_header_declares_kind_schema_count(self, tmp_path):
        path = self._ledger().write(tmp_path / "ledger.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "kind": "repro-service-ledger", "schema": 1, "count": 3,
        }

    def test_fingerprint_is_deterministic_and_latency_blind(self):
        ledger = self._ledger()
        relabelled = RequestLedger(entries=[
            LedgerEntry(**{**e.to_dict(), "latency_s": 7.0})
            for e in ledger.entries
        ])
        assert ledger.fingerprint() == relabelled.fingerprint()
        # ...but any deterministic field change moves it.
        mutated = RequestLedger(entries=list(ledger.entries))
        mutated.entries[0] = LedgerEntry(
            **{**ledger.entries[0].to_dict(), "makespan": 101.0}
        )
        assert mutated.fingerprint() != ledger.fingerprint()

    def test_read_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(HarnessError, match="empty ledger"):
            RequestLedger.read(path)

    def test_read_rejects_foreign_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "not-a-ledger"}\n')
        with pytest.raises(HarnessError, match="bad or missing header"):
            RequestLedger.read(path)

    def test_read_detects_truncation(self, tmp_path):
        path = self._ledger().write(tmp_path / "ledger.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(HarnessError, match="truncated"):
            RequestLedger.read(path)


# ----------------------------------------------------------------------
# Drive + replay determinism
# ----------------------------------------------------------------------
class TestReplayDeterminism:
    @pytest.fixture(scope="class")
    def recorded(self):
        return _record(_requests(6))

    def test_recording_captures_every_request(self, recorded):
        assert len(recorded) == 6
        assert all(e.outcome == COMPLETED for e in recorded)
        assert all(e.makespan is not None for e in recorded)
        assert all(e.latency_s is not None for e in recorded)

    def test_drive_rejects_nonpositive_speed(self, recorded):
        async def _go():
            service = SimulationService(Runner())
            async with service:
                await drive_service(service, recorded.requests(), speed=0)

        with pytest.raises(HarnessError, match="speed must be positive"):
            asyncio.run(_go())

    @pytest.mark.parametrize("speed", [1.0, 10.0])
    def test_replay_is_bit_identical_at_any_speed(self, recorded, speed):
        report = asyncio.run(replay_ledger(recorded, speed=speed))
        assert report.results_identical
        assert report.outcomes_match
        assert report.mismatches == []
        assert report.replayed_fingerprint == report.recorded_fingerprint
        assert report.completed == len(recorded)
        assert len(report.latencies) == len(recorded)

    def test_rerecorded_replay_fingerprints_identically(self, recorded):
        # The replayed ledger keeps the *original* arrival offsets, so a
        # ledger re-recorded from a sped-up replay equals its source.
        report = asyncio.run(replay_ledger(recorded, speed=10.0))
        assert report.ledger.fingerprint() == recorded.fingerprint()
        assert [e.at for e in report.ledger] == [e.at for e in recorded]

    def test_replay_detects_divergent_results(self, recorded):
        doctored = RequestLedger(entries=[
            LedgerEntry(**{**recorded.entries[0].to_dict(), "makespan": 1.0}),
            *recorded.entries[1:],
        ])
        report = asyncio.run(replay_ledger(doctored, speed=10.0))
        assert not report.results_identical
        assert not report.outcomes_match
        assert any("makespan" in line for line in report.mismatches)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
def _report(latencies, shed=0, requests=None):
    n = requests if requests is not None else len(latencies) + shed
    return ReplayReport(
        speed=1.0, requests=n, completed=len(latencies), failed=0,
        shed=shed, latencies=list(latencies),
        recorded_fingerprint="x", replayed_fingerprint="x",
        results_identical=True, outcomes_match=True, mismatches=[],
    )


class TestReplayBudgets:
    def test_budget_validation(self):
        with pytest.raises(HarnessError):
            ReplayBudgets(max_p99_s=0.0)
        with pytest.raises(HarnessError):
            ReplayBudgets(max_shed_rate=1.5)

    def test_no_budgets_never_raise(self):
        _report([10.0, 20.0]).enforce(ReplayBudgets())

    def test_passing_budgets_do_not_raise(self):
        report = _report([0.01, 0.02, 0.03], shed=1)
        report.enforce(ReplayBudgets(max_p99_s=1.0, max_shed_rate=0.5))

    def test_p99_violation_carries_evidence(self):
        report = _report([0.01] * 9 + [5.0])
        with pytest.raises(ReplayBudgetExceeded) as excinfo:
            report.enforce(ReplayBudgets(max_p99_s=1.0))
        evidence = excinfo.value.evidence
        assert len(evidence) == 1
        assert evidence[0]["budget"] == "p99_latency_s"
        assert evidence[0]["measured"] == pytest.approx(5.0)
        assert evidence[0]["limit"] == 1.0

    def test_all_violations_reported_together(self):
        report = _report([5.0, 6.0], shed=8)
        with pytest.raises(ReplayBudgetExceeded) as excinfo:
            report.enforce(ReplayBudgets(max_p99_s=1.0, max_shed_rate=0.1))
        budgets = {item["budget"] for item in excinfo.value.evidence}
        assert budgets == {"p99_latency_s", "shed_rate"}
        assert excinfo.value.evidence[1]["measured"] == pytest.approx(0.8)

    def test_shed_rate_property(self):
        assert _report([], shed=3, requests=4).shed_rate == 0.75
        assert _report([], requests=0).shed_rate == 0.0


# ----------------------------------------------------------------------
# CLI: serve --record, replay, --stats-json percentiles
# ----------------------------------------------------------------------
class TestRecordReplayCli:
    @pytest.fixture()
    def ledger_path(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        code, output = run_cli(
            "serve", "--synthetic", "4", "--traffic-seed", "7",
            "--no-store", "--record", str(path),
        )
        assert code == 0, output
        assert path.is_file()
        return path

    def test_serve_record_prints_fingerprint(self, ledger_path, capsys):
        # Re-run to inspect the diagnostics (the fixture asserts the file).
        capsys.readouterr()
        code, _ = run_cli(
            "serve", "--synthetic", "4", "--traffic-seed", "7",
            "--no-store", "--record", str(ledger_path),
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "fingerprint" in err
        assert RequestLedger.read(ledger_path).fingerprint()[:12] in err

    def test_replay_passes_and_writes_report(self, ledger_path, tmp_path):
        stats = tmp_path / "replay.json"
        code, output = run_cli(
            "replay", str(ledger_path), "--speed", "10", "--no-store",
            "--max-p99-ms", "60000", "--max-shed-rate", "0.0",
            "--stats-json", str(stats),
        )
        assert code == 0, output
        payload = json.loads(stats.read_text())
        assert payload["results_identical"] is True
        assert payload["outcomes_match"] is True
        assert payload["shed"] == 0
        assert payload["latency"]["p99"] > 0

    def test_replay_budget_failure_exits_1_with_evidence(
        self, ledger_path, tmp_path, capsys
    ):
        stats = tmp_path / "replay.json"
        capsys.readouterr()
        code, _ = run_cli(
            "replay", str(ledger_path), "--speed", "10", "--no-store",
            "--max-p99-ms", "0.0001", "--stats-json", str(stats),
        )
        assert code == 1
        assert "p99_latency_s" in capsys.readouterr().err
        # Evidence before judgement: the report file exists anyway.
        assert stats.is_file()
        assert json.loads(stats.read_text())["latency"]["p99"] > 0

    def test_replay_rejects_missing_ledger(self, tmp_path):
        code, _ = run_cli(
            "replay", str(tmp_path / "missing.jsonl"), "--no-store"
        )
        assert code == 1  # HarnessError surfaced by main()

    def test_serve_stats_json_has_latency_percentiles(self, tmp_path):
        stats = tmp_path / "stats.json"
        code, output = run_cli(
            "serve", "--synthetic", "4", "--traffic-seed", "7",
            "--no-store", "--stats-json", str(stats),
        )
        assert code == 0, output
        payload = json.loads(stats.read_text())
        latency = payload["latency"]
        for span in ("end_to_end", "queue_wait"):
            assert latency[span]["count"] > 0
            for key in ("p50", "p95", "p99"):
                assert latency[span][key] >= 0
        assert "routes" in latency
