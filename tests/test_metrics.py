"""Unit tests for SPAWN's monitored metrics (Section IV-B)."""

import pytest

from repro.core.metrics import MetricsMonitor, RunningMean, WindowedConcurrencyAverage
from repro.errors import SimulationError


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean().mean == 0.0

    def test_cumulative_mean(self):
        mean = RunningMean()
        for v in (10, 20, 30):
            mean.add(v)
        assert mean.mean == 20
        assert mean.count == 3


class TestWindowedConcurrencyAverage:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            WindowedConcurrencyAverage(1000)
        with pytest.raises(SimulationError):
            WindowedConcurrencyAverage(0)

    def test_average_zero_until_first_window_completes(self):
        avg = WindowedConcurrencyAverage(1024)
        avg.change(0.0, +4)
        avg.advance(512.0)
        assert avg.average == 0

    def test_constant_level_average(self):
        avg = WindowedConcurrencyAverage(1024)
        avg.change(0.0, +4)
        avg.advance(1024.0)
        assert avg.average == 4

    def test_bit_shift_semantics_floor(self):
        """Hardware computes (sum of levels) >> log2(window): floor division."""
        avg = WindowedConcurrencyAverage(1024)
        avg.change(0.0, +1)
        avg.change(512.0, +1)  # level 1 for half, 2 for half -> 1536 cycles
        avg.advance(1024.0)
        assert avg.average == 1  # 1536 >> 10 == 1

    def test_average_updates_per_window(self):
        avg = WindowedConcurrencyAverage(128)
        avg.change(0.0, +2)
        avg.advance(128.0)
        assert avg.average == 2
        avg.change(128.0, -2)
        avg.advance(256.0)
        assert avg.average == 0
        assert avg.windows_completed == 2

    def test_multiple_windows_advance_lazily(self):
        avg = WindowedConcurrencyAverage(128)
        avg.change(0.0, +3)
        avg.advance(128.0 * 10)
        assert avg.windows_completed == 10
        assert avg.average == 3

    def test_level_never_negative(self):
        avg = WindowedConcurrencyAverage(128)
        with pytest.raises(SimulationError):
            avg.change(0.0, -1)

    def test_time_cannot_go_backwards(self):
        avg = WindowedConcurrencyAverage(128)
        avg.advance(100.0)
        with pytest.raises(SimulationError):
            avg.advance(50.0)


class TestMetricsMonitor:
    def test_initial_state(self):
        monitor = MetricsMonitor()
        assert monitor.n == 0
        assert monitor.tcta == 0.0
        assert monitor.twarp == 0.0
        assert monitor.ncon == 0

    def test_admission_and_retirement_cycle(self):
        monitor = MetricsMonitor(window_cycles=128)
        monitor.on_ctas_admitted(3)
        assert monitor.n == 3
        assert monitor.peak_n == 3
        monitor.on_cta_started(0.0)
        monitor.on_cta_finished(200.0, exec_time=200.0, items_per_thread=1)
        assert monitor.n == 2
        assert monitor.tcta == 200.0
        assert monitor.twarp == 200.0
        assert monitor.completed_child_ctas == 1

    def test_twarp_normalized_by_items_per_thread(self):
        monitor = MetricsMonitor(window_cycles=128)
        monitor.on_ctas_admitted(1)
        monitor.on_cta_started(0.0)
        monitor.on_cta_finished(400.0, exec_time=400.0, items_per_thread=4)
        assert monitor.twarp == 100.0
        assert monitor.tcta == 400.0

    def test_finish_with_empty_ccqs_raises(self):
        monitor = MetricsMonitor()
        monitor.on_cta_started(0.0)
        with pytest.raises(SimulationError):
            monitor.on_cta_finished(10.0, exec_time=10.0, items_per_thread=1)

    def test_admit_non_positive_raises(self):
        with pytest.raises(SimulationError):
            MetricsMonitor().on_ctas_admitted(0)

    def test_ncon_reflects_concurrency_window(self):
        monitor = MetricsMonitor(window_cycles=128)
        monitor.on_ctas_admitted(4)
        for _ in range(4):
            monitor.on_cta_started(0.0)
        monitor.advance(128.0)
        assert monitor.ncon == 4
        assert monitor.current_concurrency == 4
