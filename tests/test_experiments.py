"""Tests for the experiment modules (reduced scale where possible)."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    fig01_imbalance,
    fig05_distribution,
    fig06_concurrency,
    fig07_cta_size,
    fig08_streams,
    fig12_cta_time_pdf,
    fig15_speedup,
    fig16_occupancy,
    fig17_l2,
    fig18_kernel_count,
    fig19_timeline,
    fig20_launch_cdf,
    fig21_dtbl,
    tables,
)
from repro.harness.runner import Runner
from repro.workloads import TABLE1_NAMES

#: Cheap benchmarks for reduced-scale experiment tests.
SUBSET = ("GC-citation", "BFS-citation")
DEEP = "BFS-citation"


@pytest.fixture(scope="module")
def runner():
    return Runner()


class TestRegistry:
    def test_all_experiments_listed(self):
        expected = {
            "table1", "table2", "fig01", "fig05", "fig06", "fig07", "fig08",
            "fig12", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
            "fig21",
        }
        assert set(ALL_EXPERIMENTS) == expected


class TestTables:
    def test_table1_covers_13_benchmarks(self, runner):
        result = tables.run_table1(runner)
        assert len(result.rows) == len(TABLE1_NAMES)
        assert "Breadth-First Search" in {r[0] for r in result.rows}

    def test_table2_reports_paper_constants(self, runner):
        text = tables.run_table2(runner).table()
        assert "13 SMXs" in text
        assert "1721" in text and "20210" in text
        assert "208 GPU-wide" in text


class TestCharacterization:
    def test_fig01_shows_imbalance(self, runner):
        result = fig01_imbalance.run(runner)
        # Top 10% of threads own far more than 10% of the work.
        shares = {row[0]: row[2] for row in result.rows}
        top10 = float(shares["top 10% threads"].rstrip("%"))
        assert top10 > 15.0

    def test_fig05_sweep_points(self, runner):
        result = fig05_distribution.run(runner, benchmarks=SUBSET)
        names = {row[0] for row in result.rows}
        assert names == set(SUBSET)
        starred = [row for row in result.rows if row[5] == "*"]
        assert len(starred) == len(SUBSET)

    def test_fig06_trace(self, runner):
        result = fig06_concurrency.run(runner, benchmark=DEEP)
        assert result.rows
        assert "peak concurrent CTAs" in result.notes
        for row in result.rows:
            assert row[3] == row[1] + row[2]

    def test_fig07_normalizes_to_cta32(self, runner):
        result = fig07_cta_size.run(runner, benchmarks=("GC-citation",))
        row = result.rows[0]
        assert row[0] == "GC-citation"
        assert all(isinstance(v, float) and v > 0 for v in row[1:])

    def test_fig08_stream_comparison(self, runner):
        result = fig08_streams.run(runner, benchmarks=("GC-citation",))
        assert result.rows[0][1] > 0

    def test_fig12_tightness_fractions(self, runner):
        result = fig12_cta_time_pdf.run(runner, benchmarks=SUBSET)
        for row in result.rows:
            assert row[1] > 0  # child CTAs observed
            within10 = float(row[3].rstrip("%"))
            within20 = float(row[4].rstrip("%"))
            assert within20 >= within10


class TestEvaluation:
    def test_fig15_structure_and_geomean(self, runner):
        result = fig15_speedup.run(runner, benchmarks=SUBSET)
        assert result.rows[-1][0] == "GEOMEAN"
        assert len(result.rows) == len(SUBSET) + 1
        assert "geomeans" in result.extras

    def test_fig16_occupancy_percentages(self, runner):
        result = fig16_occupancy.run(runner, benchmarks=SUBSET)
        for row in result.rows:
            for cell in row[1:]:
                assert cell.endswith("%")

    def test_fig17_l2_rates(self, runner):
        result = fig17_l2.run(runner, benchmarks=SUBSET)
        assert len(result.rows) == len(SUBSET)

    def test_fig18_spawn_launches_fewer(self, runner):
        result = fig18_kernel_count.run(runner, benchmarks=SUBSET)
        for row in result.rows:
            name, base, offline, spawn = row
            assert spawn <= base

    def test_fig19_compares_schemes(self, runner):
        result = fig19_timeline.run(runner, benchmark=DEEP)
        schemes = {row[0] for row in result.rows}
        assert schemes == {"baseline-dp", "spawn"}

    def test_fig20_cdf_monotone(self, runner):
        result = fig20_launch_cdf.run(runner, benchmark=DEEP)
        for scheme, cdf in result.extras["cdfs"].items():
            counts = [c for _, c in cdf]
            assert counts == sorted(counts)

    def test_fig21_dtbl_columns(self, runner):
        result = fig21_dtbl.run(runner, pairs=(("SSSP", "SSSP-citation"),))
        row = result.rows[0]
        assert row[0] == "SSSP"
        assert row[2] > 0 and row[3] > 0

    def test_experiment_result_table_renders(self, runner):
        result = fig18_kernel_count.run(runner, benchmarks=("GC-citation",))
        text = result.table()
        assert "fig18" in text
        assert "GC-citation" in text
