"""Unit tests for launch policies and stream policies."""

import pytest

from repro.core.metrics import MetricsMonitor
from repro.core.policies import (
    AlwaysLaunchPolicy,
    DecisionKind,
    DTBLPolicy,
    LaunchRequest,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.errors import ConfigError
from repro.runtime.streams import PerChildStream, PerParentCTAStream
from repro.sim.config import GPUConfig


def request(items=100, num_ctas=2):
    return LaunchRequest(
        time=0.0, items=items, num_ctas=num_ctas, items_per_thread=1, depth=1
    )


class TestStaticPolicies:
    def test_always_launch(self):
        assert AlwaysLaunchPolicy().decide(request(1)) is DecisionKind.LAUNCH

    def test_never_launch(self):
        assert NeverLaunchPolicy().decide(request(10**9)) is DecisionKind.SERIAL

    def test_threshold_boundary_is_strict(self):
        policy = StaticThresholdPolicy(100)
        assert policy.decide(request(items=100)) is DecisionKind.SERIAL
        assert policy.decide(request(items=101)) is DecisionKind.LAUNCH

    def test_threshold_rejects_negative(self):
        with pytest.raises(ConfigError):
            StaticThresholdPolicy(-1)

    def test_names_describe_policy(self):
        assert StaticThresholdPolicy(64).describe() == "threshold-64"
        assert AlwaysLaunchPolicy().describe() == "always-launch"


class TestSpawnPolicy:
    def test_requires_bind(self):
        with pytest.raises(ConfigError):
            SpawnPolicy().decide(request())

    def test_bind_builds_controller_with_paper_overhead(self):
        policy = SpawnPolicy()
        config = GPUConfig()
        policy.bind(MetricsMonitor(), config)
        assert policy.controller is not None
        assert policy.controller.launch_overhead_cycles == config.launch.latency(1)
        assert policy.controller.auto_admit is False

    def test_bootstrap_decision_launches(self):
        policy = SpawnPolicy()
        policy.bind(MetricsMonitor(), GPUConfig())
        assert policy.decide(request()) is DecisionKind.LAUNCH

    def test_max_queue_size_forwarded(self):
        policy = SpawnPolicy(max_queue_size=77)
        policy.bind(MetricsMonitor(), GPUConfig())
        assert policy.controller.ccqs.max_queue_size == 77


class TestDTBLPolicy:
    def test_coalesces_above_threshold(self):
        policy = DTBLPolicy(50)
        assert policy.decide(request(items=51)) is DecisionKind.COALESCE
        assert policy.decide(request(items=50)) is DecisionKind.SERIAL

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigError):
            DTBLPolicy(-1)


class TestStreamPolicies:
    def test_per_child_streams_are_unique(self):
        policy = PerChildStream()
        ids = {policy.stream_for(0, 0) for _ in range(100)}
        assert len(ids) == 100

    def test_per_child_reset_restarts_sequence(self):
        policy = PerChildStream()
        first = policy.stream_for(0, 0)
        policy.reset()
        assert policy.stream_for(0, 0) == first

    def test_per_parent_cta_is_stable(self):
        policy = PerParentCTAStream()
        a = policy.stream_for(3, 7)
        b = policy.stream_for(3, 7)
        assert a == b

    def test_per_parent_cta_distinguishes_ctas(self):
        policy = PerParentCTAStream()
        assert policy.stream_for(3, 7) != policy.stream_for(3, 8)
        assert policy.stream_for(3, 7) != policy.stream_for(4, 7)
