"""Tests for the terminal plotting helpers."""

import pytest

from repro.errors import HarnessError
from repro.harness.plotting import bar_chart, sparkline, timeline


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_reference_marker(self):
        text = bar_chart(["a"], [2.0], width=10, reference=1.0)
        assert "|" in text

    def test_title_prepended(self):
        assert bar_chart(["a"], [1.0], title="t").splitlines()[0] == "t"

    def test_validation(self):
        with pytest.raises(HarnessError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(HarnessError):
            bar_chart([], [])
        with pytest.raises(HarnessError):
            bar_chart(["a"], [0.0])


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "   "

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0, 10])
        assert line[0] == " "
        assert line[1] == "@"

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            sparkline([])


class TestTimeline:
    def test_renders_axis_and_columns(self):
        text = timeline([(0.0, 1.0), (50.0, 4.0), (100.0, 2.0)], buckets=20, height=4)
        assert "+--" in text
        assert "#" in text
        assert "100 cycles" in text

    def test_zero_series(self):
        text = timeline([(0.0, 0.0), (10.0, 0.0)])
        assert "flat zero" in text

    def test_empty_rejected(self):
        with pytest.raises(HarnessError):
            timeline([])

    def test_bucket_keeps_peak(self):
        # Two samples land in one bucket; the peak must survive.
        text = timeline([(0.0, 1.0), (0.5, 9.0), (100.0, 1.0)], buckets=10, height=3)
        assert text.splitlines()[0].strip().startswith("9.0")
