"""Unit tests for the Child CTA Queuing System model."""

import pytest

from repro.core.ccqs import CCQS
from repro.core.metrics import MetricsMonitor
from repro.errors import ConfigError


def make_ccqs(max_queue=16):
    monitor = MetricsMonitor(window_cycles=128)
    return CCQS(monitor, max_queue_size=max_queue), monitor


class TestCapacity:
    def test_rejects_non_positive_bound(self):
        with pytest.raises(ConfigError):
            CCQS(MetricsMonitor(), max_queue_size=0)

    def test_has_capacity_respects_bound(self):
        ccqs, _ = make_ccqs(max_queue=4)
        assert ccqs.has_capacity(4)
        ccqs.admit(3)
        assert ccqs.has_capacity(1)
        assert not ccqs.has_capacity(2)

    def test_admit_tracks_n(self):
        ccqs, monitor = make_ccqs()
        ccqs.admit(5)
        assert ccqs.n == 5
        assert monitor.n == 5


class TestThroughput:
    def test_zero_before_any_completion(self):
        ccqs, _ = make_ccqs()
        assert ccqs.throughput() == 0.0
        assert ccqs.estimated_drain_time(3) == 0.0

    def test_throughput_is_ncon_over_tcta(self):
        ccqs, monitor = make_ccqs()
        monitor.on_ctas_admitted(4)
        for _ in range(4):
            monitor.on_cta_started(0.0)
        monitor.advance(128.0)  # ncon window closes at 4
        monitor.on_cta_finished(200.0, exec_time=200.0, items_per_thread=1)
        assert ccqs.throughput() == pytest.approx(4 / 200.0)

    def test_drain_time_is_equation_one(self):
        ccqs, monitor = make_ccqs(max_queue=1000)
        monitor.on_ctas_admitted(10)
        for _ in range(2):
            monitor.on_cta_started(0.0)
        monitor.advance(128.0)
        monitor.on_cta_finished(200.0, exec_time=100.0, items_per_thread=1)
        # n = 9 now; drain of (9 + x) / (ncon / tcta)
        expected = (9 + 3) / (2 / 100.0)
        assert ccqs.estimated_drain_time(3) == pytest.approx(expected)

    def test_ncon_floor_of_one(self):
        """Before a concurrency window completes, ncon=0 clamps to 1."""
        ccqs, monitor = make_ccqs()
        monitor.on_ctas_admitted(1)
        monitor.on_cta_started(0.0)
        monitor.on_cta_finished(50.0, exec_time=50.0, items_per_thread=1)
        assert ccqs.throughput() == pytest.approx(1 / 50.0)

