"""Tests for seed replication and result export."""

import json

import pytest

from repro.core.policies import AlwaysLaunchPolicy
from repro.errors import HarnessError
from repro.experiments import tables
from repro.harness.export import (
    experiment_to_csv,
    experiment_to_json,
    result_to_dict,
    result_to_json,
)
from repro.harness.replication import SchemeStats, replicate
from repro.harness.runner import Runner
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator

from tests.conftest import make_dp_app

FAST = "GC-citation"


class TestSchemeStats:
    def test_statistics(self):
        stats = SchemeStats(scheme="s", speedups=(1.0, 2.0, 3.0))
        assert stats.mean == 2.0
        assert stats.min == 1.0
        assert stats.max == 3.0
        assert stats.std == pytest.approx(1.0)

    def test_single_seed_std_zero(self):
        assert SchemeStats(scheme="s", speedups=(1.5,)).std == 0.0

    def test_always_above(self):
        stats = SchemeStats(scheme="s", speedups=(1.2, 1.4))
        assert stats.always_above(1.0)
        assert not stats.always_above(1.3)


class TestReplicate:
    @pytest.fixture(scope="class")
    def replication(self):
        return replicate(FAST, schemes=("baseline-dp", "spawn"), seeds=(1, 2))

    def test_covers_every_scheme_and_seed(self, replication):
        assert set(replication.stats) == {"baseline-dp", "spawn"}
        assert len(replication.scheme("spawn").speedups) == 2

    def test_spawn_beats_baseline_on_all_seeds(self, replication):
        assert replication.consistently_ordered("spawn", "baseline-dp")

    def test_unknown_scheme_raises(self, replication):
        with pytest.raises(HarnessError):
            replication.scheme("nope")

    def test_validation(self):
        with pytest.raises(HarnessError):
            replicate(FAST, seeds=())
        with pytest.raises(HarnessError):
            replicate(FAST, schemes=())


class TestExport:
    @pytest.fixture(scope="class")
    def result(self):
        sim = GPUSimulator(config=small_debug_gpu(), policy=AlwaysLaunchPolicy())
        return sim.run(make_dp_app())

    def test_result_dict_shape(self, result):
        payload = result_to_dict(result)
        assert payload["app"] == "dp-app"
        assert payload["summary"]["child_kernels_launched"] == 32
        assert len(payload["kernels"]) == 33  # root + 32 children
        assert payload["trace"]
        assert payload["launch_cdf"][-1][1] == 32

    def test_result_json_round_trips(self, result):
        payload = json.loads(result_to_json(result))
        assert payload["summary"]["makespan"] > 0

    def test_traces_can_be_omitted(self, result):
        payload = result_to_dict(result, include_traces=False)
        assert "trace" not in payload

    def test_experiment_csv(self):
        experiment = tables.run_table1()
        text = experiment_to_csv(experiment)
        lines = text.strip().splitlines()
        assert lines[0].startswith("Application,")
        assert len(lines) == 14  # header + 13 benchmarks

    def test_experiment_json(self):
        experiment = tables.run_table2()
        payload = json.loads(experiment_to_json(experiment))
        assert payload["experiment"] == "table2"
        assert payload["rows"]
