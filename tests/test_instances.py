"""Unit tests for runtime kernel/CTA instances."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.instances import (
    CTAInstance,
    CTAState,
    KernelInstance,
    KernelState,
    PendingDecision,
)
from repro.sim.kernel import ChildRequest, KernelSpec


def make_kernel(num_threads=64, threads_per_cta=32, **kwargs) -> KernelInstance:
    spec = KernelSpec(
        name="k",
        threads_per_cta=threads_per_cta,
        thread_items=np.ones(num_threads, dtype=np.int64),
    )
    return KernelInstance(0, spec, stream_id=0, **kwargs)


def make_cta(kernel=None, warp_total=(100.0,), warp_issue=(50.0,), decisions=None, **kw):
    kernel = kernel or make_kernel(num_threads=32, is_child=False)
    return CTAInstance(
        kernel,
        0,
        num_threads=32,
        num_warps=len(warp_total),
        regs=32 * 16,
        shmem=0,
        warp_total=list(warp_total),
        warp_issue=list(warp_issue),
        decisions=decisions,
        **kw,
    )


def decision(at, warp=0, tid=0) -> PendingDecision:
    return PendingDecision(
        at_consumed=at,
        warp=warp,
        tid=tid,
        request=ChildRequest(name="c", items=8, cta_threads=32),
    )


class TestKernelInstance:
    def test_initial_state(self):
        kernel = make_kernel(is_child=False)
        assert kernel.state is KernelState.PENDING
        assert kernel.num_ctas == 2
        assert kernel.unfinished_ctas == 2
        assert kernel.computing_ctas == 2
        assert not kernel.via_dtbl

    def test_take_next_cta_index_sequences(self):
        kernel = make_kernel(is_child=False)
        assert kernel.take_next_cta_index() == 0
        assert kernel.take_next_cta_index() == 1
        assert not kernel.has_undispatched_ctas
        with pytest.raises(SimulationError):
            kernel.take_next_cta_index()

    def test_cta_finished_completion(self):
        kernel = make_kernel(is_child=False)
        assert kernel.cta_finished() is False
        assert kernel.cta_finished() is True
        with pytest.raises(SimulationError):
            kernel.cta_finished()

    def test_record_mirrors_identity(self):
        kernel = make_kernel(is_child=True)
        assert kernel.record.is_child
        assert kernel.record.num_ctas == kernel.num_ctas


class TestCTAProgress:
    def test_initial_geometry(self):
        cta = make_cta(warp_total=[100.0, 150.0], warp_issue=[50.0, 75.0])
        assert cta.total_work == 150.0
        assert cta.remaining == 150.0
        assert cta.consumed == 0.0
        assert not cta.compute_finished

    def test_demand_sums_warp_issue_fractions(self):
        cta = make_cta(warp_total=[100.0, 100.0], warp_issue=[50.0, 100.0])
        assert cta.demand == pytest.approx(1.5)

    def test_demand_scale_discounts(self):
        cta = make_cta(warp_total=[100.0], warp_issue=[100.0], demand_scale=0.5)
        assert cta.demand == pytest.approx(0.5)

    def test_compute_finished_when_consumed(self):
        cta = make_cta()
        cta.consumed = 100.0
        assert cta.compute_finished

    def test_rejects_bad_geometry(self):
        with pytest.raises(SimulationError):
            make_cta(warp_total=[100.0, 50.0], warp_issue=[10.0])
        with pytest.raises(SimulationError):
            make_cta(warp_total=[0.0], warp_issue=[0.0])

    def test_exec_time_requires_completion(self):
        cta = make_cta()
        with pytest.raises(SimulationError):
            _ = cta.exec_time
        cta.dispatch_time = 10.0
        cta.compute_done_time = 110.0
        assert cta.exec_time == 100.0


class TestDecisions:
    def test_decisions_sorted_by_progress_point(self):
        cta = make_cta(decisions=[decision(80), decision(20), decision(50)])
        points = [d.at_consumed for d in cta.decisions]
        assert points == [20, 50, 80]
        assert cta.next_decision_point == 20

    def test_decision_beyond_base_work_rejected(self):
        with pytest.raises(SimulationError):
            make_cta(decisions=[decision(101)])

    def test_pop_fired_respects_progress(self):
        cta = make_cta(decisions=[decision(20), decision(50)])
        assert cta.pop_fired_decisions() == []
        cta.consumed = 30
        fired = cta.pop_fired_decisions()
        assert len(fired) == 1 and fired[0].at_consumed == 20
        assert cta.next_decision_point == 50

    def test_compute_not_finished_until_decisions_fired(self):
        cta = make_cta(decisions=[decision(100)])
        cta.consumed = 100
        assert not cta.compute_finished
        cta.pop_fired_decisions()
        assert cta.compute_finished


class TestExtendThread:
    def test_single_thread_extension_grows_warp(self):
        cta = make_cta()
        cta.extend_thread(0, 5, 40.0, 20.0)
        assert cta.total_work == 140.0
        assert cta.warp_total[0] == 140.0

    def test_same_thread_extensions_accumulate(self):
        cta = make_cta()
        cta.extend_thread(0, 5, 40.0, 20.0)
        cta.extend_thread(0, 5, 40.0, 20.0)
        assert cta.total_work == 180.0

    def test_different_threads_overlap_in_simt(self):
        """Two threads' serial loops overlap: warp grows to the max, not sum."""
        cta = make_cta()
        cta.extend_thread(0, 5, 40.0, 20.0)
        cta.extend_thread(0, 6, 30.0, 15.0)
        assert cta.total_work == 140.0
        cta.extend_thread(0, 6, 30.0, 15.0)  # thread 6 now at 60 > 40
        assert cta.total_work == 160.0

    def test_extension_updates_demand_on_refresh(self):
        cta = make_cta(warp_total=[100.0], warp_issue=[50.0])
        before = cta.demand
        cta.extend_thread(0, 1, 100.0, 100.0)
        assert cta.refresh_demand() > before

    def test_rejects_negative_extension(self):
        with pytest.raises(SimulationError):
            make_cta().extend_thread(0, 0, -1.0, 0.0)

    def test_state_transitions(self):
        cta = make_cta()
        assert cta.state is CTAState.RUNNING
        cta.state = CTAState.WAITING_CHILDREN
        assert cta.state is CTAState.WAITING_CHILDREN
