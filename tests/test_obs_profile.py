"""Tests for the counter/timer registry (repro.obs.profile)."""

import time

from repro.harness.runner import RunConfig, Runner
from repro.obs.profile import REGISTRY, Registry, TimerStat


class TestCounters:
    def test_count_creates_and_accumulates(self):
        reg = Registry()
        assert reg.count("x") == 1.0
        assert reg.count("x", 2.5) == 3.5
        assert reg.counter_rows() == [("x", 3.5)]

    def test_counters_independent(self):
        reg = Registry()
        reg.count("a")
        reg.count("b", 10)
        assert dict(reg.counter_rows()) == {"a": 1.0, "b": 10.0}


class TestTimers:
    def test_profile_measures_elapsed(self):
        reg = Registry()
        with reg.profile("sleep"):
            time.sleep(0.01)
        ((name, calls, total, mean, mx),) = reg.timer_rows()
        assert name == "sleep" and calls == 1
        assert total >= 0.01
        assert mean == total and mx == total

    def test_profile_aggregates_repeats(self):
        reg = Registry()
        for _ in range(3):
            with reg.profile("loop"):
                pass
        ((_, calls, total, mean, mx),) = reg.timer_rows()
        assert calls == 3
        assert mx >= mean
        assert abs(total - 3 * mean) < 1e-9

    def test_profile_records_on_exception(self):
        reg = Registry()
        try:
            with reg.profile("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert reg.timers["boom"].count == 1

    def test_add_time_and_rows_sorted_by_total(self):
        reg = Registry()
        reg.add_time("fast", 0.001)
        reg.add_time("slow", 1.0)
        rows = reg.timer_rows()
        assert [r[0] for r in rows] == ["slow", "fast"]

    def test_timer_stat_mean_empty(self):
        assert TimerStat().mean == 0.0

    def test_clear(self):
        reg = Registry()
        reg.count("c")
        reg.add_time("t", 1.0)
        reg.clear()
        assert reg.counter_rows() == [] and reg.timer_rows() == []


class TestRunnerIntegration:
    def test_runner_times_simulations_and_counts_cache(self):
        REGISTRY.clear()
        runner = Runner()
        config = RunConfig(benchmark="GC-citation", scheme="flat")
        runner.run(config)
        runner.run(config)  # cache hit
        timers = dict(
            (name, calls) for name, calls, *_ in REGISTRY.timer_rows()
        )
        assert timers.get("sim.run/GC-citation/flat") == 1
        counters = dict(REGISTRY.counter_rows())
        assert counters.get("runner.cache_hits") == 1.0
        assert counters.get("runner.cache_misses") == 1.0
