"""Unit tests for the L2 cache model and memory system."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.config import CacheConfig, MemoryConfig
from repro.sim.memory import MemorySystem, SetAssociativeCache


def tiny_cache(sets=4, assoc=2, line=128) -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheConfig(size_bytes=sets * assoc * line, line_bytes=line, associativity=assoc)
    )


class TestSetAssociativeCache:
    def test_first_access_misses_second_hits(self):
        cache = tiny_cache()
        assert cache.access_line(7) is False
        assert cache.access_line(7) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_within_set(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.access_line(0)
        cache.access_line(1)
        cache.access_line(2)  # evicts 0
        assert cache.access_line(0) is False
        assert cache.contains_line(2)

    def test_lru_refresh_on_hit(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.access_line(0)
        cache.access_line(1)
        cache.access_line(0)  # 1 becomes LRU
        cache.access_line(2)  # evicts 1
        assert cache.contains_line(0)
        assert not cache.contains_line(1)

    def test_different_sets_do_not_conflict(self):
        cache = tiny_cache(sets=4, assoc=1)
        for line in range(4):
            cache.access_line(line)
        for line in range(4):
            assert cache.contains_line(line)

    def test_capacity_never_exceeded(self):
        cache = tiny_cache(sets=2, assoc=2)
        for line in range(100):
            cache.access_line(line)
        total = sum(len(s) for s in cache._sets)
        assert total <= 4

    def test_access_lines_returns_hit_miss_counts(self):
        cache = tiny_cache()
        hits, misses = cache.access_lines([1, 2, 1, 2, 3])
        assert (hits, misses) == (2, 3)

    def test_flush_preserves_counters(self):
        cache = tiny_cache()
        cache.access_line(5)
        cache.flush()
        assert not cache.contains_line(5)
        assert cache.misses == 1

    def test_reset_counters(self):
        cache = tiny_cache()
        cache.access_line(5)
        cache.reset_counters()
        assert cache.accesses == 0

    def test_hit_rate_empty_is_zero(self):
        assert tiny_cache().hit_rate == 0.0

    def test_line_of(self):
        cache = tiny_cache(line=128)
        assert cache.line_of(0) == 0
        assert cache.line_of(127) == 0
        assert cache.line_of(128) == 1


def make_memory(**kwargs) -> MemorySystem:
    return MemorySystem(MemoryConfig(), **kwargs)


class TestMemorySystem:
    def test_region_lines_spans_lines(self):
        mem = make_memory()
        lines = mem.region_lines([(0, 256)])  # two 128B lines
        assert lines == [0, 1]

    def test_region_lines_collapses_consecutive_duplicates(self):
        mem = make_memory()
        lines = mem.region_lines([(0, 64), (64, 64)])
        assert lines == [0]

    def test_region_lines_skips_empty_regions(self):
        mem = make_memory()
        assert mem.region_lines([(0, 0), (128, -4)]) == []

    def test_region_lines_sampled_when_too_long(self):
        mem = make_memory(max_lines_per_cta=10)
        lines = mem.region_lines([(0, 128 * 1000)])
        assert len(lines) == 10

    def test_array_and_tuple_paths_agree(self):
        mem_a = make_memory()
        mem_b = make_memory()
        bases = np.array([0, 512, 4096], dtype=np.int64)
        extents = np.array([256, 128, 300], dtype=np.int64)
        regions = list(zip(bases.tolist(), extents.tolist()))
        assert mem_a.region_lines(regions) == mem_b.region_lines_arrays(bases, extents)

    def test_access_cta_reports_hit_rate(self):
        mem = make_memory()
        hits, misses, rate = mem.access_cta([(0, 256)])
        assert (hits, misses, rate) == (0, 2, 0.0)
        hits, misses, rate = mem.access_cta([(0, 256)])
        assert (hits, misses, rate) == (2, 0, 1.0)

    def test_access_cta_empty_is_perfect(self):
        assert make_memory().access_cta([]) == (0, 0, 1.0)

    def test_access_cta_arrays_matches_tuples(self):
        mem_a = make_memory()
        mem_b = make_memory()
        bases = np.array([0, 1024], dtype=np.int64)
        extents = np.array([512, 512], dtype=np.int64)
        res_a = mem_a.access_cta(list(zip(bases.tolist(), extents.tolist())))
        res_b = mem_b.access_cta_arrays(bases, extents)
        assert res_a == res_b

    def test_eviction_degrades_reuse(self):
        """A working set larger than the L2 loses its reuse."""
        small = MemorySystem(
            MemoryConfig(l2=CacheConfig(size_bytes=4 * 1024, line_bytes=128, associativity=2))
        )
        footprint = [(0, 32 * 1024)]  # 8x the cache
        small.access_cta(footprint)
        _, _, rate = small.access_cta(footprint)
        assert rate == 0.0

    def test_rejects_bad_sampling_cap(self):
        with pytest.raises(ConfigError):
            make_memory(max_lines_per_cta=0)

    def test_stall_cycles_delegates_to_config(self):
        mem = make_memory()
        assert mem.stall_cycles(1.0) == mem.config.stall_cycles(1.0)
