"""Tests for the SPAWN decision audit (repro.obs.audit)."""

import pytest

from repro.harness.runner import RunConfig, Runner
from repro.obs.audit import DecisionAudit, DecisionAuditRecord
from repro.obs.tracer import (
    KERNEL_COMPLETE,
    LAUNCH_DECISION,
    TraceEvent,
    Tracer,
)


def decision_event(ts, verdict, child_id=None, **extra):
    args = {
        "verdict": verdict,
        "items": 100,
        "num_ctas": 2,
        "depth": 1,
        "parent_kernel_id": 0,
    }
    if child_id is not None:
        args["child_kernel_id"] = child_id
    args.update(extra)
    return TraceEvent(ts, LAUNCH_DECISION, args)


def completion_event(ts, kernel_id):
    return TraceEvent(
        ts, KERNEL_COMPLETE, {"kernel_id": kernel_id, "kernel": "k", "is_child": True}
    )


class TestJoin:
    def test_launched_decision_joins_child_completion(self):
        events = [
            decision_event(
                100.0, "launch", child_id=7,
                n=4, n_con=2, t_cta=50.0, t_warp=1.0,
                t_child=150.0, t_parent=200.0, bootstrap=False,
            ),
            completion_event(260.0, 7),
        ]
        audit = DecisionAudit.from_events(events)
        (record,) = audit.records
        assert record.joined
        assert record.t_child_actual == pytest.approx(160.0)
        assert record.abs_error == pytest.approx(-10.0)
        assert record.rel_error == pytest.approx(10.0 / 160.0)

    def test_bootstrap_decision_has_no_prediction(self):
        events = [
            decision_event(
                0.0, "launch", child_id=3,
                n=0, n_con=0, t_cta=0.0, t_warp=0.0,
                t_child=0.0, t_parent=0.0, bootstrap=True,
            ),
            completion_event(500.0, 3),
        ]
        audit = DecisionAudit.from_events(events)
        (record,) = audit.records
        assert record.bootstrap
        assert not record.has_prediction
        assert not record.joined
        assert record.rel_error is None

    def test_declined_decision_never_joins(self):
        events = [
            decision_event(
                10.0, "serial",
                n=4, n_con=2, t_cta=50.0, t_warp=1.0,
                t_child=300.0, t_parent=100.0, bootstrap=False,
            ),
        ]
        audit = DecisionAudit.from_events(events)
        (record,) = audit.records
        assert not record.launched
        assert record.has_prediction  # the model ran, it just said no
        assert not record.joined  # but there is no child to join against

    def test_unfinished_child_stays_unjoined(self):
        events = [
            decision_event(
                10.0, "launch", child_id=9,
                t_child=100.0, t_parent=200.0, bootstrap=False,
            )
            # no completion event (e.g. ring buffer dropped it)
        ]
        audit = DecisionAudit.from_events(events)
        assert not audit.records[0].joined

    def test_threshold_style_decision_without_payload(self):
        # Policies without a prediction model emit only the verdict.
        events = [decision_event(5.0, "launch", child_id=1), completion_event(50.0, 1)]
        audit = DecisionAudit.from_events(events)
        (record,) = audit.records
        assert record.t_child_pred is None
        assert not record.has_prediction


class TestStats:
    def test_counts_and_errors(self):
        events = [
            decision_event(0.0, "launch", child_id=1, t_child=0.0, t_parent=0.0,
                           bootstrap=True),
            decision_event(10.0, "launch", child_id=2, t_child=90.0, t_parent=120.0,
                           bootstrap=False),
            decision_event(20.0, "serial", t_child=500.0, t_parent=100.0,
                           bootstrap=False),
            completion_event(100.0, 1),
            completion_event(110.0, 2),  # actual 100, predicted 90
        ]
        stats = DecisionAudit.from_events(events).stats()
        assert stats["decisions"] == 3
        assert stats["launched"] == 2
        assert stats["declined"] == 1
        assert stats["bootstrap"] == 1
        assert stats["predicted"] == 2
        assert stats["joined"] == 1
        assert stats["mean_rel_error"] == pytest.approx(0.1)
        assert stats["max_rel_error"] == pytest.approx(0.1)
        assert stats["mean_bias"] == pytest.approx(-10.0)

    def test_no_joined_records_omits_error_keys(self):
        stats = DecisionAudit.from_events(
            [decision_event(0.0, "serial", t_child=1.0, t_parent=0.5, bootstrap=False)]
        ).stats()
        assert "mean_rel_error" not in stats
        assert stats["decisions"] == 1

    def test_zero_actual_time_excluded_from_rel_error(self):
        record = DecisionAuditRecord(
            time=0.0, verdict="launch", items=1, num_ctas=1, depth=1,
            parent_kernel_id=0, child_kernel_id=1,
            t_child_pred=10.0, t_parent_pred=20.0, t_child_actual=0.0,
        )
        assert record.rel_error is None
        assert record.abs_error == pytest.approx(10.0)


class TestIntegration:
    def test_spawn_audit_on_real_run(self):
        runner = Runner()
        tracer = Tracer()
        runner.run(
            RunConfig(benchmark="GC-citation", scheme="spawn"), tracer=tracer
        )
        audit = DecisionAudit.from_events(tracer.events())
        stats = audit.stats()
        assert stats["decisions"] > 0
        assert stats["launched"] + stats["declined"] == stats["decisions"]
        assert stats["joined"] > 0
        # The controller's model should be in the right ballpark on this
        # benchmark: mean relative error well under 100%.
        assert 0.0 <= stats["mean_rel_error"] < 1.0
        assert stats["max_rel_error"] >= stats["mean_rel_error"]

    def test_baseline_dp_audit_has_verdicts_but_no_predictions(self):
        runner = Runner()
        tracer = Tracer()
        runner.run(
            RunConfig(benchmark="GC-citation", scheme="baseline-dp"), tracer=tracer
        )
        stats = DecisionAudit.from_events(tracer.events()).stats()
        assert stats["decisions"] > 0
        assert stats["predicted"] == 0
        assert "mean_rel_error" not in stats
