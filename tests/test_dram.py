"""Tests for the optional DRAM bandwidth model."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import GPUConfig, MemoryConfig
from repro.sim.dram import DramBandwidthModel
from repro.sim.engine import GPUSimulator
from repro.sim.memory import MemorySystem

from tests.conftest import make_flat_app


class TestDramBandwidthModel:
    def test_idle_system_has_unit_factor(self):
        dram = DramBandwidthModel(1.0, 1000)
        assert dram.record(0.0, 0) == pytest.approx(1.0)

    def test_factor_grows_with_utilization(self):
        dram = DramBandwidthModel(1.0, 1000)
        low = dram.record(0.0, 100)  # 10% of window capacity
        high = dram.record(1.0, 800)  # 90% of window capacity
        assert high > low > 1.0

    def test_factor_saturates_at_cap(self):
        dram = DramBandwidthModel(1.0, 100)
        factor = dram.record(0.0, 10_000)  # way beyond capacity
        assert factor == pytest.approx(1.0 / (1.0 - 0.95))

    def test_window_expiry_resets_utilization(self):
        dram = DramBandwidthModel(1.0, 100)
        dram.record(0.0, 90)
        assert dram.utilization(50.0) > 0.5
        assert dram.utilization(500.0) == 0.0

    def test_telemetry(self):
        dram = DramBandwidthModel(1.0, 100)
        dram.record(0.0, 10)
        dram.record(1.0, 20)
        assert dram.total_misses == 30
        assert dram.peak_utilization > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            DramBandwidthModel(0.0, 100)
        with pytest.raises(ConfigError):
            DramBandwidthModel(1.0, 0)
        with pytest.raises(ConfigError):
            DramBandwidthModel(1.0, 100).record(0.0, -1)


class TestMemorySystemIntegration:
    def test_disabled_by_default(self):
        mem = MemorySystem(MemoryConfig())
        assert mem.dram is None

    def test_congestion_raises_stall(self):
        congested = MemorySystem(
            MemoryConfig(dram_peak_lines_per_cycle=0.001, dram_window_cycles=4096)
        )
        free = MemorySystem(MemoryConfig())
        # Both streams are cold (all misses); the congested system pays more.
        stall_free, _ = free.cta_access([(0, 128 * 64)], now=0.0)
        congested.cta_access([(10**7, 128 * 512)], now=0.0)  # warm up pressure
        stall_hot, _ = congested.cta_access([(0, 128 * 64)], now=1.0)
        assert stall_hot > stall_free

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MemoryConfig(dram_peak_lines_per_cycle=-1.0)
        with pytest.raises(ConfigError):
            MemoryConfig(dram_window_cycles=0)


class TestEngineWithBandwidth:
    def test_bandwidth_bound_run_is_slower(self):
        app = make_flat_app(threads=128, items=32)
        base = GPUSimulator(config=GPUConfig()).run(app)
        throttled = GPUSimulator(
            config=GPUConfig(
                memory=MemoryConfig(
                    dram_peak_lines_per_cycle=0.01, dram_window_cycles=4096
                )
            )
        ).run(app)
        assert throttled.makespan > base.makespan
