"""Tests for the structured event tracer (repro.obs.tracer)."""

import pytest

from repro.harness import schemes as sch
from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HWQ_BIND,
    HWQ_RELEASE,
    KERNEL_ARRIVAL,
    KERNEL_COMPLETE,
    LAUNCH_DECISION,
    NULL_TRACER,
    ListSink,
    NullTracer,
    RingBufferSink,
    TraceEvent,
    Tracer,
    filter_events,
)
from repro.sim.engine import GPUSimulator
from repro.workloads.base import get_benchmark


class TestTracerBasics:
    def test_emit_stamps_bound_clock(self):
        t = Tracer()
        clock = [0.0]
        t.bind_clock(lambda: clock[0])
        t.emit(KERNEL_ARRIVAL, kernel_id=1)
        clock[0] = 42.0
        t.emit(KERNEL_COMPLETE, kernel_id=1)
        events = t.events()
        assert [e.ts for e in events] == [0.0, 42.0]

    def test_explicit_ts_overrides_clock(self):
        t = Tracer()
        t.emit(KERNEL_ARRIVAL, ts=7.5, kernel_id=1)
        assert t.events()[0].ts == 7.5

    def test_args_round_trip(self):
        t = Tracer()
        t.emit(CTA_DISPATCH, ts=1.0, kernel_id=3, smx=5, cta_index=0)
        event = t.events()[0]
        assert event.kind == CTA_DISPATCH
        assert event.args == {"kernel_id": 3, "smx": 5, "cta_index": 0}
        assert event.to_dict() == {
            "ts": 1.0,
            "kind": CTA_DISPATCH,
            "kernel_id": 3,
            "smx": 5,
            "cta_index": 0,
        }

    def test_empty_tracer_is_truthy(self):
        # `tracer or NULL_TRACER` defaults must never silently discard an
        # enabled-but-empty tracer.
        assert bool(Tracer())

    def test_clear_and_num_events(self):
        t = Tracer()
        t.emit(KERNEL_ARRIVAL, ts=0.0)
        assert t.num_events == 1
        t.clear()
        assert t.num_events == 0

    def test_filter_events(self):
        t = Tracer()
        t.emit(KERNEL_ARRIVAL, ts=0.0, kernel_id=0)
        t.emit(KERNEL_COMPLETE, ts=1.0, kernel_id=0)
        t.emit(KERNEL_ARRIVAL, ts=2.0, kernel_id=1)
        arrivals = filter_events(t.events(), KERNEL_ARRIVAL)
        assert len(arrivals) == 2
        assert [e.args["kernel_id"] for e in arrivals] == [0, 1]


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(KERNEL_ARRIVAL, kernel_id=1)
        assert NULL_TRACER.num_events == 0

    def test_fresh_instance_is_noop(self):
        t = NullTracer()
        t.emit(CTA_FINISH, ts=1.0)
        assert t.events() == []


class TestRingBufferSink:
    def test_keeps_last_n(self):
        t = Tracer(sink=RingBufferSink(3))
        for i in range(10):
            t.emit(KERNEL_ARRIVAL, ts=float(i), kernel_id=i)
        events = t.events()
        assert len(events) == 3
        assert [e.args["kernel_id"] for e in events] == [7, 8, 9]
        assert t.sink.dropped == 7

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_clear_resets_dropped(self):
        sink = RingBufferSink(1)
        sink.append(TraceEvent(0.0, KERNEL_ARRIVAL, {}))
        sink.append(TraceEvent(1.0, KERNEL_ARRIVAL, {}))
        assert sink.dropped == 1
        sink.clear()
        assert sink.dropped == 0 and len(sink) == 0


class TestEngineInstrumentation:
    @pytest.fixture(scope="class")
    def traced(self):
        bench = get_benchmark("GC-citation")
        tracer = Tracer()
        sim = GPUSimulator(
            policy=sch.make_policy(sch.SchemeSpec.parse("spawn"), bench),
            tracer=tracer,
        )
        result = sim.run(bench.dp(1))
        return result, tracer.events()

    def test_traced_run_is_bit_identical_to_untraced(self, traced):
        result, _ = traced
        bench = get_benchmark("GC-citation")
        plain = GPUSimulator(
            policy=sch.make_policy(sch.SchemeSpec.parse("spawn"), bench)
        ).run(bench.dp(1))
        assert plain.makespan == result.makespan
        assert plain.summary() == result.summary()

    def test_all_event_families_present(self, traced):
        _, events = traced
        kinds = {e.kind for e in events}
        for kind in (
            KERNEL_ARRIVAL,
            KERNEL_COMPLETE,
            CTA_DISPATCH,
            CTA_FINISH,
            HWQ_BIND,
            HWQ_RELEASE,
            LAUNCH_DECISION,
        ):
            assert kind in kinds, f"missing {kind}"

    def test_timestamps_monotonic(self, traced):
        _, events = traced
        ts = [e.ts for e in events]
        assert ts == sorted(ts)

    def test_cta_dispatch_finish_balanced(self, traced):
        _, events = traced
        dispatched = filter_events(events, CTA_DISPATCH)
        finished = filter_events(events, CTA_FINISH)
        assert len(dispatched) == len(finished) > 0
        assert {(e.args["kernel_id"], e.args["cta_index"]) for e in dispatched} == {
            (e.args["kernel_id"], e.args["cta_index"]) for e in finished
        }

    def test_decision_count_matches_stats(self, traced):
        result, events = traced
        decisions = filter_events(events, LAUNCH_DECISION)
        launched = [e for e in decisions if e.args["verdict"] == "launch"]
        declined = [e for e in decisions if e.args["verdict"] == "serial"]
        assert len(launched) == result.stats.child_kernels_launched
        assert len(declined) == result.stats.child_kernels_declined

    def test_spawn_decisions_carry_audit_payload(self, traced):
        _, events = traced
        decisions = filter_events(events, LAUNCH_DECISION)
        predicted = [e for e in decisions if not e.args.get("bootstrap")]
        assert predicted, "expected post-bootstrap decisions"
        sample = predicted[0].args
        for field in ("n", "n_con", "t_cta", "t_warp", "t_child", "t_parent"):
            assert field in sample

    def test_hwq_occupancy_within_limit(self, traced):
        _, events = traced
        for e in events:
            if e.kind in (HWQ_BIND, HWQ_RELEASE):
                assert 0 <= e.args["bound"] <= 32
