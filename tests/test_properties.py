"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import WindowedConcurrencyAverage
from repro.sim.config import CacheConfig, GPUConfig, MemoryConfig, small_debug_gpu
from repro.sim.events import EventQueue
from repro.sim.instances import CTAInstance, KernelInstance
from repro.sim.kernel import ChildRequest, KernelSpec, spec_from_request
from repro.sim.memory import MemorySystem, SetAssociativeCache
from repro.sim.smx import SMX
from repro.workloads.base import AddressAllocator


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_event_queue_pops_in_sorted_order(times):
    queue = EventQueue()
    seen = []
    for t in times:
        queue.schedule(t, lambda t=t: seen.append(t))
    queue.run()
    assert seen == sorted(times)


@given(
    st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=8),
)
def test_cache_capacity_invariant(lines, sets_log2, assoc):
    sets = 1 << sets_log2
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=sets * assoc * 128, line_bytes=128, associativity=assoc)
    )
    for line in lines:
        cache.access_line(line)
        for idx, ways in enumerate(cache._sets):
            assert len(ways) <= assoc
            assert all(w % sets == idx for w in ways)
    assert cache.hits + cache.misses == len(lines)


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=2, max_size=100))
def test_cache_immediate_rereference_hits(lines):
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=8 * 2 * 128, line_bytes=128, associativity=2)
    )
    for line in lines:
        cache.access_line(line)
        assert cache.access_line(line) is True


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**7),
            st.integers(min_value=1, max_value=4096),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_region_lines_cover_every_region(regions):
    mem = MemorySystem(MemoryConfig(), max_lines_per_cta=10**6)
    lines = set(mem.region_lines(regions))
    for base, extent in regions:
        assert base // 128 in lines
        assert (base + extent - 1) // 128 in lines


@given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50))
def test_allocator_regions_never_overlap(sizes):
    alloc = AddressAllocator()
    spans = []
    for size in sizes:
        base = alloc.alloc(size)
        spans.append((base, base + size))
    spans.sort()
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert start >= end


@given(
    st.integers(min_value=1, max_value=10**5),
    st.integers(min_value=1, max_value=512),
    st.integers(min_value=1, max_value=64),
)
def test_spec_from_request_conserves_items(items, cta_threads, ipt):
    req = ChildRequest(
        name="c", items=items, cta_threads=cta_threads, items_per_thread=ipt
    )
    spec = spec_from_request(req, depth=1)
    assert int(spec.thread_items.sum()) == items
    assert spec.num_threads == req.num_threads
    assert spec.thread_items.min() >= 1


@given(
    st.lists(
        st.tuples(st.floats(min_value=1, max_value=1e5), st.floats(min_value=0, max_value=1e5)),
        min_size=1,
        max_size=4,
    ),
    st.floats(min_value=1.0, max_value=1e4),
)
@settings(max_examples=50)
def test_smx_progress_is_monotone_and_bounded(warp_work, horizon):
    """Consumed progress never decreases, never exceeds total work."""
    smx = SMX(0, small_debug_gpu())
    spec = KernelSpec(
        name="k", threads_per_cta=32, thread_items=np.ones(32, dtype=np.int64)
    )
    kernel = KernelInstance(0, spec, stream_id=0, is_child=False)
    cta = CTAInstance(
        kernel,
        0,
        num_threads=32,
        num_warps=len(warp_work),
        regs=0,
        shmem=0,
        warp_total=[w for w, _ in warp_work],
        warp_issue=[min(i, w) for w, i in warp_work],
    )
    smx.add(cta, 0.0)
    last = 0.0
    for step in range(1, 5):
        smx.advance(horizon * step / 4)
        assert cta.consumed >= last
        assert cta.consumed <= cta.total_work + 1e-6
        last = cta.consumed


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10_000),  # event time
            st.sampled_from([-1, 1]),  # concurrency delta
        ),
        min_size=1,
        max_size=60,
    )
)
def test_windowed_average_bounded_by_peak(changes):
    avg = WindowedConcurrencyAverage(256)
    level = 0
    peak = 0
    for time, delta in sorted(changes, key=lambda c: c[0]):
        if level + delta < 0:
            continue
        avg.change(time, delta)
        level += delta
        peak = max(peak, level)
    assert 0 <= avg.average <= max(peak, 0)


@given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=199))
def test_kernel_spec_cta_ranges_partition_threads(threads, probe):
    spec = KernelSpec(
        name="k", threads_per_cta=32, thread_items=np.ones(threads, dtype=np.int64)
    )
    covered = []
    for cta in range(spec.num_ctas):
        covered.extend(spec.cta_thread_range(cta))
    assert covered == list(range(threads))


@given(st.floats(min_value=0.0, max_value=1.0))
def test_stall_cycles_monotone_in_miss_rate(hit_rate):
    mem = MemoryConfig()
    assert mem.stall_cycles(hit_rate) >= mem.stall_cycles(min(1.0, hit_rate + 0.1)) - 1e-9


@given(st.integers(min_value=1, max_value=32))
def test_launch_latency_monotone_in_batch(x):
    config = GPUConfig().launch
    assert config.latency(x + 1) > config.latency(x)
