"""Differential validation of optimized engine components (``repro.check``).

Fast layer: the naive reference components (list-based event queue,
list-ordered LRU) behave identically to their optimized counterparts on
randomized unit workloads, and one fixed end-to-end app produces identical
traces through both engines.

Slow layer (``-m slow``): hypothesis-generated applications from the shared
``tests.strategies`` module run through ``run_differential`` — the optimized
engine (binary-heap queue with lazy cancellation and compaction, cached
``next_event_time``, OrderedDict LRU) must produce a bit-identical event
stream and ``SimStats`` against the pure-Python references.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import ReferenceEventQueue, run_differential
from repro.check.reference import ReferenceLRUCache
from repro.core.policies import SpawnPolicy
from repro.sim.config import CacheConfig, GPUConfig, small_debug_gpu
from repro.sim.engine import GPUSimulator
from repro.sim.events import EventQueue
from repro.sim.memory import SetAssociativeCache

from tests.strategies import POLICIES, micro_apps, policies, rich_apps


# ---------------------------------------------------------------------------
# Fast unit equivalence
# ---------------------------------------------------------------------------
@st.composite
def queue_scripts(draw):
    """A schedule/cancel script: (time, cancel_earlier_index) pairs."""
    n = draw(st.integers(min_value=1, max_value=40))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    cancels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=0, max_size=n // 2, unique=True,
        )
    )
    return times, cancels


@given(script=queue_scripts())
@settings(max_examples=80, deadline=None)
def test_event_queue_matches_reference(script):
    times, cancels = script
    order = {"heap": [], "ref": []}
    queues = {"heap": EventQueue(), "ref": ReferenceEventQueue()}
    for name, queue in queues.items():
        handles = [
            queue.schedule(t, lambda n=name, i=i: order[n].append(i))
            for i, t in enumerate(times)
        ]
        for index in cancels:
            handles[index].cancel()
        queue.run()
    assert order["heap"] == order["ref"]
    assert queues["heap"].now == queues["ref"].now


@given(
    lines=st.lists(st.integers(min_value=0, max_value=300), max_size=200),
)
@settings(max_examples=80, deadline=None)
def test_lru_cache_matches_reference(lines):
    config = CacheConfig(size_bytes=4096, line_bytes=128, associativity=4)
    optimized = SetAssociativeCache(config)
    reference = ReferenceLRUCache(config)
    for line in lines:
        assert optimized.access_line(line) == reference.access_line(line)
    assert (optimized.hits, optimized.misses) == (
        reference.hits, reference.misses,
    )


def test_reference_queue_pop_and_peek():
    queue = ReferenceEventQueue()
    queue.schedule(5.0, lambda: None)
    first = queue.schedule(1.0, lambda: None)
    assert queue.peek_time() == 1.0
    assert queue.pop() is first
    assert len(queue) == 1
    assert queue.now == 1.0


def test_fixed_app_differential_is_clean():
    from repro.workloads import get_benchmark

    app = get_benchmark("MM-small").dp(1)
    mismatch = run_differential(app, policy_factory=SpawnPolicy)
    assert mismatch is None


@pytest.mark.parametrize("engine", ["default", "fast"])
@pytest.mark.parametrize(
    "policy_idx", range(6, len(POLICIES)), ids=lambda i: POLICIES[i]().name
)
def test_fixed_app_merge_policy_differential(engine, policy_idx):
    """Consolidate/aggregate flushes are identical through the optimized,
    fast, and naive-reference engines on a fixed DP app."""
    from repro.workloads import get_benchmark

    app = get_benchmark("MM-small").dp(1)
    mismatch = run_differential(
        app, policy_factory=POLICIES[policy_idx], engine=engine
    )
    assert mismatch is None, str(mismatch)


@pytest.mark.parametrize("engine", ["default", "fast"])
def test_fixed_app_acs_differential(engine):
    """ACS binding order is identical through all three engines under
    HWQ contention (2 HWQs force the wait queue to fill)."""
    from repro.core.policies import StaticThresholdPolicy
    from repro.workloads import get_benchmark

    bench = get_benchmark("MM-small")
    mismatch = run_differential(
        bench.dp(1),
        config=GPUConfig(num_hwq=2),
        policy_factory=lambda: StaticThresholdPolicy(
            bench.default_threshold
        ),
        sim_kwargs={"bind_policy": "acs"},
        engine=engine,
    )
    assert mismatch is None, str(mismatch)


# ---------------------------------------------------------------------------
# Slow hypothesis sweeps
# ---------------------------------------------------------------------------
@pytest.mark.slow
@given(
    app=micro_apps(),
    policy_idx=st.integers(min_value=0, max_value=len(POLICIES) - 1),
)
@settings(max_examples=40, deadline=None)
def test_differential_micro_apps(app, policy_idx):
    mismatch = run_differential(
        app,
        config=small_debug_gpu(),
        policy_factory=POLICIES[policy_idx],
    )
    assert mismatch is None, str(mismatch)


@pytest.mark.slow
@given(app=rich_apps(), policy_factory=policies())
@settings(max_examples=15, deadline=None)
def test_differential_rich_apps(app, policy_factory):
    mismatch = run_differential(
        app,
        config=small_debug_gpu(),
        policy_factory=policy_factory,
    )
    assert mismatch is None, str(mismatch)


@pytest.mark.slow
@given(app=micro_apps())
@settings(max_examples=10, deadline=None)
def test_reference_engine_matches_on_full_gpu(app):
    """Same sweep on the full Table II GPU (32 HWQs, 13 SMXs)."""
    mismatch = run_differential(
        app, config=GPUConfig(), policy_factory=SpawnPolicy
    )
    assert mismatch is None, str(mismatch)
