"""Tests for the bootstrap-sensitivity extension experiment."""

import pytest

from repro.experiments import EXTRA_EXPERIMENTS
from repro.experiments.extra_bootstrap import run as bootstrap
from repro.harness.runner import Runner


@pytest.fixture(scope="module")
def runner():
    return Runner()


def test_registered():
    assert "bootstrap-sensitivity" in EXTRA_EXPERIMENTS


def test_scales_sweep_b(runner):
    result = bootstrap(
        runner, benchmarks=("GC-citation",), scales=(1.0, 0.1)
    )
    assert [row[1] for row in result.rows] == [20210, 2021]
    for row in result.rows:
        assert row[2] > 0 and row[3] > 0


def test_feedback_delay_explains_gap_on_sssp_citation(runner):
    """With a tiny b, SPAWN closes its gap to Offline-Search here."""
    result = bootstrap(
        runner, benchmarks=("SSSP-citation",), scales=(1.0, 0.05)
    )
    ratios = [row[4] for row in result.rows]
    assert ratios[1] >= ratios[0]
