"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "BFS-citation"])
        assert args.scheme == "spawn"
        assert args.seed == 1
        assert args.stream_policy == "per-child"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_list(self):
        code, text = run_cli("list")
        assert code == 0
        assert "BFS-graph500" in text
        assert "SA-thaliana" in text

    def test_config(self):
        code, text = run_cli("config")
        assert code == 0
        assert "13 SMXs" in text
        assert "1721" in text

    def test_run_flat(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "flat")
        assert code == 0
        assert "makespan" in text
        assert "speedup_vs_flat" not in text

    def test_run_spawn_reports_speedup(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "spawn")
        assert code == 0
        assert "speedup_vs_flat" in text

    def test_run_unknown_benchmark_fails_cleanly(self):
        code, _ = run_cli("run", "not-a-benchmark")
        assert code == 1

    def test_run_bad_scheme_fails_cleanly(self):
        code, _ = run_cli("run", "GC-citation", "--scheme", "bogus")
        assert code == 1

    def test_sweep(self):
        code, text = run_cli("sweep", "GC-citation")
        assert code == 0
        assert "THRESHOLD" in text
        assert "*" in text

    def test_experiment_table(self):
        code, text = run_cli("experiment", "table2")
        assert code == 0
        assert "GPU configuration" in text

    def test_experiment_unknown_id(self):
        code, _ = run_cli("experiment", "fig99")
        assert code == 2

    def test_experiment_fig01(self):
        code, text = run_cli("experiment", "fig01")
        assert code == 0
        assert "imbalance" in text
