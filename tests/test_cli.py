"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "BFS-citation"])
        assert args.scheme == "spawn"
        assert args.seed == 1
        assert args.stream_policy == "per-child"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_list(self):
        code, text = run_cli("list")
        assert code == 0
        assert "BFS-graph500" in text
        assert "SA-thaliana" in text

    def test_config(self):
        code, text = run_cli("config")
        assert code == 0
        assert "13 SMXs" in text
        assert "1721" in text

    def test_run_flat(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "flat")
        assert code == 0
        assert "makespan" in text
        assert "speedup_vs_flat" not in text

    def test_run_spawn_reports_speedup(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "spawn")
        assert code == 0
        assert "speedup_vs_flat" in text

    def test_run_unknown_benchmark_fails_cleanly(self):
        code, _ = run_cli("run", "not-a-benchmark")
        assert code == 1

    def test_run_bad_scheme_fails_cleanly(self):
        code, _ = run_cli("run", "GC-citation", "--scheme", "bogus")
        assert code == 1

    def test_sweep(self):
        code, text = run_cli("sweep", "GC-citation")
        assert code == 0
        assert "THRESHOLD" in text
        assert "*" in text

    def test_experiment_table(self):
        code, text = run_cli("experiment", "table2")
        assert code == 0
        assert "GPU configuration" in text

    def test_experiment_unknown_id(self):
        code, _ = run_cli("experiment", "fig99")
        assert code == 2

    def test_experiment_fig01(self):
        code, text = run_cli("experiment", "fig01")
        assert code == 0
        assert "imbalance" in text


class TestObservabilityCommands:
    def test_run_json_is_machine_readable(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "spawn", "--json")
        assert code == 0
        summary = json.loads(text)
        assert summary["makespan"] > 0
        assert "speedup_vs_flat" in summary
        assert "peak_ccqs_depth" in summary

    def test_run_json_flat_has_no_speedup(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "flat", "--json")
        assert code == 0
        assert "speedup_vs_flat" not in json.loads(text)

    def test_run_trace_exports(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        code, _ = run_cli(
            "run", "GC-citation", "--scheme", "spawn",
            "--trace", str(jsonl), "--chrome-trace", str(chrome),
        )
        assert code == 0
        lines = jsonl.read_text().strip().splitlines()
        assert lines and all(json.loads(l)["kind"] for l in lines)
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_run_profile_prints_timings(self):
        code, text = run_cli("run", "GC-citation", "--scheme", "flat", "--profile")
        assert code == 0
        assert "harness wall-clock profile" in text
        assert "sim.run/GC-citation/flat" in text

    def test_audit_prints_prediction_error_table(self):
        code, text = run_cli("audit", "GC-citation", "--scheme", "spawn")
        assert code == 0
        assert "decision audit" in text
        assert "mean_err" in text
        assert "GC-citation" in text

    def test_audit_json(self):
        code, text = run_cli("audit", "GC-citation", "--json")
        assert code == 0
        stats = json.loads(text)["GC-citation"]
        assert stats["decisions"] > 0
        assert "mean_rel_error" in stats

    def test_audit_baseline_dp_has_no_error_columns(self):
        code, text = run_cli("audit", "GC-citation", "--scheme", "baseline-dp")
        assert code == 0
        assert "-" in text  # no prediction payload -> dashes

    def test_audit_unknown_benchmark_fails_cleanly(self):
        code, _ = run_cli("audit", "not-a-benchmark")
        assert code == 1


class TestSuiteCacheBench:
    def test_suite_parser_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.jobs is None
        assert args.experiments is None
        assert not args.no_store

    def test_bench_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.repeat == 3
        assert args.output is None
        assert args.min_speedup is None  # None -> DEFAULT_MIN_SPEEDUP

    def test_suite_rejects_unknown_experiment(self):
        code, _ = run_cli("suite", "--experiments", "fig99", "--jobs", "1",
                          "--no-store")
        assert code == 2

    def test_suite_rejects_bad_jobs(self):
        code, _ = run_cli("suite", "--jobs", "0", "--no-store")
        assert code == 2

    def test_suite_subset_with_store(self, tmp_path):
        cache = tmp_path / "cache"
        code, text = run_cli(
            "suite", "--experiments", "fig19", "--jobs", "1",
            "--cache-dir", str(cache),
        )
        assert code == 0
        assert "fig19" in text
        assert cache.is_dir()  # results were persisted

    def test_cache_stats_and_clear(self, tmp_path):
        code, text = run_cli("cache", "stats", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "entries" in text
        code, text = run_cli("cache", "clear", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "removed 0 entries" in text


def canned_bench_report(*, speedup=2.0, identical=True, engine="default"):
    """A minimal run_bench-shaped report for exercising the CLI gate."""
    return {
        "repeat": 1,
        "seed": 1,
        "engine": engine,
        "pairs": [
            {
                "pair": "SA-thaliana/spawn",
                "seconds": 1.0,
                "makespan": 42.0,
                "reference_seconds": 2.0,
                "speedup": speedup,
                "makespan_identical": identical,
            }
        ],
    }


class TestBenchGate:
    """`repro bench` must fail loudly on regression — but always emit
    the report file first, so a failing CI run still leaves evidence."""

    def fake_bench(self, monkeypatch, **kwargs):
        import repro.harness.bench as bench

        monkeypatch.setattr(
            bench, "run_bench",
            lambda *, repeat, seed, engine="default": canned_bench_report(
                engine=engine, **kwargs
            ),
        )

    def test_healthy_run_exits_zero(self, monkeypatch, tmp_path):
        self.fake_bench(monkeypatch, speedup=2.0)
        out = tmp_path / "BENCH.json"
        code, text = run_cli("bench", "--output", str(out))
        assert code == 0
        assert out.is_file()
        assert "SA-thaliana/spawn" in text

    def test_speedup_regression_exits_nonzero_but_writes_report(
        self, monkeypatch, tmp_path
    ):
        self.fake_bench(monkeypatch, speedup=0.1)  # below DEFAULT_MIN_SPEEDUP
        out = tmp_path / "BENCH.json"
        code, _ = run_cli("bench", "--output", str(out))
        assert code == 1
        # The evidence file exists despite the failure.
        assert json.loads(out.read_text())["pairs"][0]["speedup"] == 0.1

    def test_min_speedup_flag_tightens_the_gate(self, monkeypatch, tmp_path):
        self.fake_bench(monkeypatch, speedup=2.0)
        out = tmp_path / "BENCH.json"
        code, _ = run_cli(
            "bench", "--output", str(out), "--min-speedup", "3.0"
        )
        assert code == 1
        assert out.is_file()
        code, _ = run_cli(
            "bench", "--output", str(out), "--min-speedup", "1.5"
        )
        assert code == 0

    def test_makespan_drift_still_fails(self, monkeypatch, tmp_path):
        self.fake_bench(monkeypatch, speedup=2.0, identical=False)
        out = tmp_path / "BENCH.json"
        code, _ = run_cli("bench", "--output", str(out))
        assert code == 1
        assert out.is_file()

    def test_rejects_nonpositive_min_speedup(self):
        code, _ = run_cli("bench", "--min-speedup", "0")
        assert code == 2

    def test_rejects_bad_repeat(self):
        code, _ = run_cli("bench", "--repeat", "0")
        assert code == 2


def canned_compare_report(*, speedup=1.3, identical=True):
    """A minimal compare_engines-shaped report for the CLI gate."""
    return {
        "mode": "compare-engines",
        "repeat": 1,
        "seed": 1,
        "engines": ["default", "fast"],
        "baseline_engine": "default",
        "aggregate_seconds": {"default": 1.3, "fast": 1.0},
        "aggregate_speedup": {"fast": speedup},
        "pairs": [
            {
                "pair": "SA-thaliana/spawn",
                "engines": {
                    "default": {"seconds": 1.3, "makespan": 42.0},
                    "fast": {
                        "seconds": 1.0,
                        "makespan": 42.0 if identical else 43.0,
                        "speedup": speedup,
                        "makespan_identical": identical,
                    },
                },
                "reference_makespan_identical": True,
            }
        ],
    }


class TestEngineFlags:
    """The --engine flag across commands, plus bench --compare-engines."""

    def test_run_parser_engine_default_and_choices(self):
        args = build_parser().parse_args(["run", "MM-small"])
        assert args.engine == "default"
        args = build_parser().parse_args(
            ["run", "MM-small", "--engine", "fast"]
        )
        assert args.engine == "fast"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "MM-small", "--engine", "warp"])

    def test_every_engine_command_accepts_the_flag(self):
        for command in (["run", "MM-small"], ["suite"], ["check"],
                        ["bench"], ["serve"], ["perf"]):
            args = build_parser().parse_args(command + ["--engine", "fast"])
            assert args.engine == "fast", command

    def test_run_fast_engine_matches_default(self):
        code, fast_text = run_cli(
            "run", "MM-small", "--scheme", "spawn", "--engine", "fast",
            "--json",
        )
        assert code == 0
        code, default_text = run_cli(
            "run", "MM-small", "--scheme", "spawn", "--json"
        )
        assert code == 0
        # Certified bit-identical: the whole JSON summary must match.
        assert json.loads(fast_text) == json.loads(default_text)

    def test_check_update_golden_refuses_candidate_engines(self, capsys):
        code, _ = run_cli("check", "--update-golden", "--engine", "fast")
        assert code == 2
        assert "default engine" in capsys.readouterr().err

    def fake_compare(self, monkeypatch, **kwargs):
        import repro.harness.bench as bench

        monkeypatch.setattr(
            bench, "compare_engines",
            lambda *, repeat, seed: canned_compare_report(**kwargs),
        )

    def test_compare_engines_writes_matrix_report(self, monkeypatch, tmp_path):
        self.fake_compare(monkeypatch)
        out = tmp_path / "BENCH.json"
        code, text = run_cli("bench", "--compare-engines", "--output", str(out))
        assert code == 0
        assert "aggregate speedup" in text
        report = json.loads(out.read_text())
        assert report["mode"] == "compare-engines"

    def test_compare_engines_min_speedup_gate(self, monkeypatch, tmp_path):
        self.fake_compare(monkeypatch, speedup=0.8)
        out = tmp_path / "BENCH.json"
        code, _ = run_cli(
            "bench", "--compare-engines", "--output", str(out),
            "--min-speedup", "0.9",
        )
        assert code == 1
        assert out.is_file()  # evidence written before the gate fired

    def test_compare_engines_makespan_mismatch_fails(
        self, monkeypatch, tmp_path
    ):
        self.fake_compare(monkeypatch, identical=False)
        out = tmp_path / "BENCH.json"
        code, _ = run_cli("bench", "--compare-engines", "--output", str(out))
        assert code == 1
        assert out.is_file()


class TestServe:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.requests is None
        assert args.jobs == 2
        assert args.deadline_ms is None
        assert args.inline_ms == 0.0
        assert args.max_batch == 8
        assert args.synthetic == 20
        assert not args.stats

    def test_serve_synthetic_traffic(self, tmp_path):
        stats_path = tmp_path / "stats.json"
        code, text = run_cli(
            "serve", "--synthetic", "8", "--no-store",
            "--stats", "--stats-json", str(stats_path),
        )
        assert code == 0
        assert "service admission ledger" in text
        assert "cost model snapshot" in text
        stats = json.loads(stats_path.read_text())
        assert stats["submitted"] == 8
        assert stats["lost"] == 0
        assert stats["failed"] == 0
        assert stats["completed"] == 8

    def test_serve_scripted_request_file(self, tmp_path):
        requests = [
            {"benchmark": "GC-citation", "scheme": "flat"},
            {"benchmark": "GC-citation", "scheme": "flat"},  # coalesces
            {"benchmark": "MM-small", "scheme": "spawn", "seed": 2},
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests))
        stats_path = tmp_path / "stats.json"
        code, _ = run_cli(
            "serve", str(path), "--no-store", "--jobs", "1",
            "--stats-json", str(stats_path),
        )
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert stats["submitted"] == 3
        assert stats["coalesced"] == 1
        assert stats["lost"] == 0

    def test_serve_rejects_empty_traffic(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        code, _ = run_cli("serve", str(path), "--no-store")
        assert code == 2

    def test_serve_rejects_bad_synthetic_count(self):
        code, _ = run_cli("serve", "--synthetic", "0", "--no-store")
        assert code == 2

    def test_serve_unknown_benchmark_fails_cleanly(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text(
            json.dumps([{"benchmark": "nope", "scheme": "flat"}])
        )
        code, _ = run_cli("serve", str(path), "--no-store")
        assert code == 1  # ReproError -> clean CLI error, no traceback
