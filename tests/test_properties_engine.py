"""Property-based tests on whole-simulation invariants.

Hypothesis generates random micro-applications (grid sizes, work
distributions, child requests, launch positions) and random policies; the
invariants below must hold for every one of them:

* the simulation terminates with every kernel complete,
* work items are conserved across parent/child partitioning,
* SPAWN's CCQS population returns to zero,
* per-kernel lifecycle timestamps are ordered,
* occupancy stays within [0, 1].
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import SpawnPolicy, StaticThresholdPolicy
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator

from tests.strategies import POLICIES, micro_apps


@given(app=micro_apps(), policy_idx=st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_simulation_invariants(app, policy_idx):
    sim = GPUSimulator(config=small_debug_gpu(), policy=POLICIES[policy_idx]())
    result = sim.run(app)

    # Termination: everything completed, queues drained.
    assert sim._unfinished_kernels == 0
    assert sim.gmu.drained()
    assert not sim._dtbl_pending

    # Work conservation.
    stats = result.stats
    assert stats.items_in_parent + stats.items_in_child == app.flat_items

    # CCQS drained.
    assert sim.metrics.n == 0
    assert sim.metrics.current_concurrency == 0

    # Lifecycle ordering for every kernel.
    for rec in stats.kernels.values():
        assert rec.arrival_time <= rec.first_dispatch_time <= rec.completion_time
        if rec.is_child:
            assert rec.launch_call_time <= rec.arrival_time

    # Bounded derived metrics.
    assert 0.0 <= stats.smx_occupancy <= 1.0
    assert 0.0 <= stats.offload_fraction <= 1.0
    assert stats.makespan >= 0.0

    # Decision accounting: every request resolved exactly once.
    resolved = (
        stats.child_kernels_launched
        + stats.child_kernels_declined
        + stats.child_kernels_reused
    )
    requested = sum(k.num_child_requests() for k in app.kernels)
    assert resolved == requested


@given(app=micro_apps())
@settings(max_examples=20, deadline=None)
def test_determinism_property(app):
    a = GPUSimulator(config=small_debug_gpu(), policy=SpawnPolicy()).run(app)
    b = GPUSimulator(config=small_debug_gpu(), policy=SpawnPolicy()).run(app)
    assert a.makespan == b.makespan
    assert a.stats.child_kernels_launched == b.stats.child_kernels_launched


@given(app=micro_apps(), threshold=st.integers(min_value=0, max_value=250))
@settings(max_examples=30, deadline=None)
def test_threshold_monotone_offload(app, threshold):
    """Raising the threshold never increases the offloaded fraction."""
    low = GPUSimulator(
        config=small_debug_gpu(), policy=StaticThresholdPolicy(threshold)
    ).run(app)
    high = GPUSimulator(
        config=small_debug_gpu(), policy=StaticThresholdPolicy(threshold + 50)
    ).run(app)
    assert high.stats.items_in_child <= low.stats.items_in_child
