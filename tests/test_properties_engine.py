"""Property-based tests on whole-simulation invariants.

Hypothesis generates random micro-applications (grid sizes, work
distributions, child requests, launch positions) and random policies; the
invariants below must hold for every one of them:

* the simulation terminates with every kernel complete,
* work items are conserved across parent/child partitioning,
* SPAWN's CCQS population returns to zero,
* per-kernel lifecycle timestamps are ordered,
* occupancy stays within [0, 1],
* scheme-zoo structure: merge buffers drain, decisions are deterministic,
  consolidation is monotone in its batch bound, and aggregation launch
  counts obey the warp >= block >= grid granularity ordering.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    AggregatePolicy,
    ConsolidatePolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator

from tests.strategies import POLICIES, micro_apps


@given(app=micro_apps(), policy_idx=st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_simulation_invariants(app, policy_idx):
    sim = GPUSimulator(config=small_debug_gpu(), policy=POLICIES[policy_idx]())
    result = sim.run(app)

    # Termination: everything completed, queues drained.
    assert sim._unfinished_kernels == 0
    assert sim.gmu.drained()
    assert not sim._dtbl_pending

    # Work conservation.
    stats = result.stats
    assert stats.items_in_parent + stats.items_in_child == app.flat_items

    # CCQS drained.
    assert sim.metrics.n == 0
    assert sim.metrics.current_concurrency == 0

    # Lifecycle ordering for every kernel.
    for rec in stats.kernels.values():
        assert rec.arrival_time <= rec.first_dispatch_time <= rec.completion_time
        if rec.is_child:
            assert rec.launch_call_time <= rec.arrival_time

    # Bounded derived metrics.
    assert 0.0 <= stats.smx_occupancy <= 1.0
    assert 0.0 <= stats.offload_fraction <= 1.0
    assert stats.makespan >= 0.0

    # Decision accounting: every request resolved exactly once.
    resolved = (
        stats.child_kernels_launched
        + stats.child_kernels_declined
        + stats.child_kernels_reused
    )
    requested = sum(k.num_child_requests() for k in app.kernels)
    assert resolved == requested


@given(app=micro_apps())
@settings(max_examples=20, deadline=None)
def test_determinism_property(app):
    a = GPUSimulator(config=small_debug_gpu(), policy=SpawnPolicy()).run(app)
    b = GPUSimulator(config=small_debug_gpu(), policy=SpawnPolicy()).run(app)
    assert a.makespan == b.makespan
    assert a.stats.child_kernels_launched == b.stats.child_kernels_launched


@given(app=micro_apps(), threshold=st.integers(min_value=0, max_value=250))
@settings(max_examples=30, deadline=None)
def test_threshold_monotone_offload(app, threshold):
    """Raising the threshold never increases the offloaded fraction."""
    low = GPUSimulator(
        config=small_debug_gpu(), policy=StaticThresholdPolicy(threshold)
    ).run(app)
    high = GPUSimulator(
        config=small_debug_gpu(), policy=StaticThresholdPolicy(threshold + 50)
    ).run(app)
    assert high.stats.items_in_child <= low.stats.items_in_child


# ---------------------------------------------------------------------------
# Scheme zoo (consolidate / aggregate)
# ---------------------------------------------------------------------------
#: The merge-policy tail of POLICIES (consolidate + three granularities).
MERGE_POLICY_RANGE = (6, len(POLICIES) - 1)


@given(
    app=micro_apps(),
    policy_idx=st.integers(
        min_value=MERGE_POLICY_RANGE[0], max_value=MERGE_POLICY_RANGE[1]
    ),
)
@settings(max_examples=60, deadline=None)
def test_merge_policy_invariants(app, policy_idx):
    """Termination, drained merge buffers, and decision accounting hold
    for every consolidate/aggregate policy on every generated app."""
    sim = GPUSimulator(config=small_debug_gpu(), policy=POLICIES[policy_idx]())
    result = sim.run(app)

    assert sim._unfinished_kernels == 0
    assert sim.gmu.drained()
    assert not sim._cta_merge  # every block/cta-scope buffer flushed
    assert not sim._grid_merge  # every grid-scope buffer flushed

    stats = result.stats
    assert stats.items_in_parent + stats.items_in_child == app.flat_items

    # Every request resolved exactly once, buffered verdicts included.
    resolved = (
        stats.child_kernels_launched
        + stats.child_kernels_declined
        + stats.child_kernels_reused
        + stats.child_kernels_consolidated
        + stats.child_kernels_aggregated
    )
    requested = sum(k.num_child_requests() for k in app.kernels)
    assert resolved == requested

    # A merged kernel exists iff at least one request was buffered.
    buffered = stats.child_kernels_consolidated + stats.child_kernels_aggregated
    if buffered:
        assert 1 <= stats.merged_kernels_launched <= buffered
    else:
        assert stats.merged_kernels_launched == 0


@given(
    app=micro_apps(),
    policy_idx=st.integers(
        min_value=MERGE_POLICY_RANGE[0], max_value=MERGE_POLICY_RANGE[1]
    ),
)
@settings(max_examples=20, deadline=None)
def test_merge_policy_determinism(app, policy_idx):
    """Merge-scheme decisions and flush order are fully deterministic."""
    runs = [
        GPUSimulator(
            config=small_debug_gpu(), policy=POLICIES[policy_idx]()
        ).run(app)
        for _ in range(2)
    ]
    assert runs[0].makespan == runs[1].makespan
    assert runs[0].stats.to_dict() == runs[1].stats.to_dict()


@given(app=micro_apps(), batch=st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_consolidation_batch_monotone(app, batch):
    """A larger batch bound never yields more merged kernels: per-key
    greedy segmentation makes the flush count non-increasing in the
    batch, independent of timing."""
    small = GPUSimulator(
        config=small_debug_gpu(), policy=ConsolidatePolicy(0, batch_ctas=batch)
    ).run(app)
    large = GPUSimulator(
        config=small_debug_gpu(),
        policy=ConsolidatePolicy(0, batch_ctas=batch + 3),
    ).run(app)
    assert (
        large.stats.merged_kernels_launched
        <= small.stats.merged_kernels_launched
    )
    # Buffered-request totals agree: the bound only re-segments them.
    assert (
        large.stats.child_kernels_consolidated
        == small.stats.child_kernels_consolidated
    )


@given(app=micro_apps())
@settings(max_examples=30, deadline=None)
def test_aggregation_granularity_ordering(app):
    """Coarser aggregation scopes can only merge more aggressively:
    launch counts obey warp >= block >= grid (each block group unions
    whole warp groups; each grid group unions whole block groups)."""
    merged = {}
    aggregated = {}
    for granularity in ("warp", "block", "grid"):
        result = GPUSimulator(
            config=small_debug_gpu(),
            policy=AggregatePolicy(0, granularity),
        ).run(app)
        merged[granularity] = result.stats.merged_kernels_launched
        aggregated[granularity] = result.stats.child_kernels_aggregated
    assert merged["warp"] >= merged["block"] >= merged["grid"]
    # The same requests are buffered at every granularity.
    assert len(set(aggregated.values())) == 1
