"""Unit tests for kernel/CTA descriptions (repro.sim.kernel)."""

import numpy as np
import pytest

from repro.errors import ResourceError, WorkloadError
from repro.sim.config import GPUConfig, small_debug_gpu
from repro.sim.kernel import (
    Application,
    ChildRequest,
    KernelSpec,
    normalize_requests,
    spec_from_request,
    uses_dynamic_parallelism,
)


def simple_spec(**kwargs):
    defaults = dict(
        name="k",
        threads_per_cta=32,
        thread_items=np.full(64, 3, dtype=np.int64),
    )
    defaults.update(kwargs)
    return KernelSpec(**defaults)


class TestChildRequest:
    def test_grid_geometry(self):
        req = ChildRequest(name="c", items=100, cta_threads=32)
        assert req.num_threads == 100
        assert req.num_ctas == 4

    def test_items_per_thread_shrinks_grid(self):
        req = ChildRequest(name="c", items=100, cta_threads=32, items_per_thread=4)
        assert req.num_threads == 25
        assert req.num_ctas == 1

    def test_rejects_zero_items(self):
        with pytest.raises(WorkloadError):
            ChildRequest(name="c", items=0, cta_threads=32)

    def test_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            ChildRequest(name="c", items=4, cta_threads=0)
        with pytest.raises(WorkloadError):
            ChildRequest(name="c", items=4, cta_threads=32, items_per_thread=0)

    def test_rejects_bad_at_fraction(self):
        with pytest.raises(WorkloadError):
            ChildRequest(name="c", items=4, cta_threads=32, at_fraction=1.5)

    def test_rejects_negative_costs(self):
        with pytest.raises(WorkloadError):
            ChildRequest(name="c", items=4, cta_threads=32, cycles_per_item=-1)

    def test_nested_bound_checked(self):
        with pytest.raises(WorkloadError):
            ChildRequest(
                name="c",
                items=4,
                cta_threads=32,
                nested={10: ChildRequest(name="g", items=2, cta_threads=32)},
            )

    def test_nested_accepts_single_request_and_lists(self):
        g = ChildRequest(name="g", items=2, cta_threads=32)
        req = ChildRequest(name="c", items=8, cta_threads=32, nested={0: g, 1: [g]})
        assert req.nested[0] == [g]
        assert req.nested[1] == [g]

    def test_with_cta_threads_deep_copies(self):
        g = ChildRequest(name="g", items=64, cta_threads=32)
        req = ChildRequest(name="c", items=64, cta_threads=32, nested={0: g})
        resized = req.with_cta_threads(128)
        assert resized.cta_threads == 128
        assert resized.nested[0][0].cta_threads == 128
        assert req.cta_threads == 32


class TestNormalizeRequests:
    def test_rejects_non_request_values(self):
        with pytest.raises(WorkloadError):
            normalize_requests({0: "not-a-request"})

    def test_rejects_empty_list(self):
        with pytest.raises(WorkloadError):
            normalize_requests({0: []})


class TestKernelSpec:
    def test_grid_geometry(self):
        spec = simple_spec()
        assert spec.num_threads == 64
        assert spec.num_ctas == 2
        assert spec.warps_per_cta == 1

    def test_ragged_final_cta(self):
        spec = simple_spec(thread_items=np.ones(70, dtype=np.int64))
        assert spec.num_ctas == 3
        assert list(spec.cta_thread_range(2)) == list(range(64, 70))

    def test_cta_thread_range_bounds(self):
        with pytest.raises(WorkloadError):
            simple_spec().cta_thread_range(2)

    def test_rejects_empty_grid(self):
        with pytest.raises(WorkloadError):
            simple_spec(thread_items=np.array([], dtype=np.int64))

    def test_rejects_negative_items(self):
        with pytest.raises(WorkloadError):
            simple_spec(thread_items=np.array([1, -1], dtype=np.int64))

    def test_rejects_misaligned_mem_bases(self):
        with pytest.raises(WorkloadError):
            simple_spec(mem_bases=np.zeros(3, dtype=np.int64))

    def test_rejects_out_of_range_child_request(self):
        with pytest.raises(WorkloadError):
            simple_spec(
                child_requests={99: ChildRequest(name="c", items=4, cta_threads=32)}
            )

    def test_check_fits_thread_limit(self, debug_config):
        spec = simple_spec(
            threads_per_cta=512, thread_items=np.ones(512, dtype=np.int64)
        )
        with pytest.raises(ResourceError):
            spec.check_fits(debug_config)

    def test_check_fits_register_limit(self, debug_config):
        spec = simple_spec(regs_per_thread=4096)
        with pytest.raises(ResourceError):
            spec.check_fits(debug_config)

    def test_check_fits_shared_memory_limit(self, debug_config):
        spec = simple_spec(shmem_per_cta=debug_config.shared_mem_per_smx + 1)
        with pytest.raises(ResourceError):
            spec.check_fits(debug_config)

    def test_check_fits_accepts_valid(self):
        simple_spec().check_fits(GPUConfig())

    def test_item_accounting(self):
        req = ChildRequest(name="c", items=10, cta_threads=32)
        spec = simple_spec(child_requests={0: req, 1: [req, req]})
        assert spec.total_child_items() == 30
        assert spec.num_child_requests() == 3
        assert spec.total_items() == 64 * 3 + 30

    def test_with_child_cta_threads(self):
        req = ChildRequest(name="c", items=100, cta_threads=32)
        spec = simple_spec(child_requests={0: req})
        resized = spec.with_child_cta_threads(64)
        assert resized.child_requests[0][0].cta_threads == 64
        assert spec.child_requests[0][0].cta_threads == 32


class TestSpecFromRequest:
    def test_materializes_grid(self):
        req = ChildRequest(name="c", items=100, cta_threads=32, mem_base=1000)
        spec = spec_from_request(req, depth=1)
        assert spec.num_threads == 100
        assert spec.depth == 1
        assert spec.contiguous_footprint
        assert spec.thread_items.sum() == 100

    def test_remainder_on_last_thread(self):
        req = ChildRequest(name="c", items=10, cta_threads=32, items_per_thread=4)
        spec = spec_from_request(req, depth=1)
        assert list(spec.thread_items) == [4, 4, 2]

    def test_bases_tile_the_parent_range(self):
        req = ChildRequest(
            name="c", items=8, cta_threads=32, items_per_thread=2, mem_base=64, mem_stride=4
        )
        spec = spec_from_request(req, depth=1)
        assert list(spec.mem_bases) == [64, 72, 80, 88]

    def test_nested_requests_carried_over(self):
        g = ChildRequest(name="g", items=4, cta_threads=32)
        req = ChildRequest(name="c", items=8, cta_threads=32, nested={1: g})
        spec = spec_from_request(req, depth=1)
        assert spec.child_requests[1] == [g]


class TestApplication:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            Application(name="a", kernels=[])

    def test_rejects_negative_flat_items(self):
        with pytest.raises(WorkloadError):
            Application(name="a", kernels=[simple_spec()], flat_items=-1)

    def test_validate_checks_all_kernels(self):
        bad = simple_spec(regs_per_thread=100000)
        app = Application(name="a", kernels=[simple_spec(), bad])
        with pytest.raises(ResourceError):
            app.validate(small_debug_gpu())

    def test_uses_dynamic_parallelism(self):
        plain = Application(name="a", kernels=[simple_spec()])
        assert not uses_dynamic_parallelism(plain)
        dp = Application(
            name="b",
            kernels=[
                simple_spec(
                    child_requests={0: ChildRequest(name="c", items=4, cta_threads=32)}
                )
            ],
        )
        assert uses_dynamic_parallelism(dp)
