"""Tests for the runtime invariant checker (``repro.check.invariants``).

Three layers:

* clean end-to-end runs report zero violations (attached directly and via
  ``Runner(check=True)``),
* synthetic event streams with hand-planted defects trip the matching
  invariant,
* deliberately seeded engine bugs (test-only GMU flags) are caught — the
  LIFO-bind bug by BOTH the invariant checker and the golden-trace diff,
  which is the conformance subsystem's acceptance criterion.
"""

import functools

import pytest

from repro.check import ConformanceChecker, diff_traces
from repro.check.golden import canonical_events
from repro.errors import ConformanceError
from repro.harness.runner import RunConfig, Runner
from repro.harness.schemes import SchemeSpec, make_policy
from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HWQ_BIND,
    HWQ_RELEASE,
    KERNEL_ARRIVAL,
    KERNEL_COMPLETE,
    LAUNCH_MERGE,
)
from repro.runtime.streams import PerParentCTAStream
from repro.sim.config import GPUConfig
from repro.sim.engine import GPUSimulator
from repro.sim.gmu import GMU
from repro.sim.smx import SMX
from repro.workloads import get_benchmark


def _checked_run(
    benchmark,
    scheme,
    *,
    config=None,
    sim_cls=GPUSimulator,
    stream_policy=None,
    **sim_kwargs,
):
    """Simulate one benchmark/scheme cell with a checker attached."""
    config = config or GPUConfig()
    bench = get_benchmark(benchmark)
    spec = SchemeSpec.parse(scheme)
    policy = make_policy(spec, bench)
    app = bench.flat(1) if scheme == "flat" else bench.dp(1)
    checker = ConformanceChecker(config, scheme=scheme)
    if spec.bind_policy != "fcfs":
        sim_kwargs.setdefault("bind_policy", spec.bind_policy)
    sim = sim_cls(
        config=config,
        policy=policy,
        stream_policy=stream_policy,
        tracer=checker,
        **sim_kwargs,
    )
    result = sim.run(app)
    return checker, result


class TestCleanRuns:
    def test_mm_small_spawn_zero_violations(self):
        checker, result = _checked_run("MM-small", "spawn")
        checker.finalize(result)
        assert checker.violations == []
        assert checker.events_checked > 0

    def test_flat_scheme_zero_violations(self):
        checker, result = _checked_run("MM-small", "flat")
        checker.finalize(result)
        assert checker.violations == []

    def test_finalize_accepts_simresult_or_stats(self):
        checker, result = _checked_run("MM-small", "spawn")
        assert checker.finalize(result) == []
        other, result2 = _checked_run("MM-small", "spawn")
        assert other.finalize(result2.stats) == []

    def test_runner_check_flag(self):
        result = Runner().run(
            RunConfig(benchmark="MM-small", scheme="spawn"), check=True
        )
        assert result.makespan > 0

    def test_stats_tampering_is_caught(self):
        checker, result = _checked_run("MM-small", "spawn")
        result.stats.child_kernels_launched += 1
        checker.finalize(result)
        assert any(v.invariant == "stats" for v in checker.violations)

    def test_raise_if_violations(self):
        checker, result = _checked_run("MM-small", "spawn")
        checker.raise_if_violations()  # clean: no exception
        result.stats.makespan += 1.0
        checker.finalize(result)
        with pytest.raises(ConformanceError) as excinfo:
            checker.raise_if_violations()
        assert excinfo.value.violations
        assert "makespan" in str(excinfo.value)


class TestSyntheticViolations:
    """Hand-built event streams exercising each invariant's trip wire."""

    def _checker(self, **config_kwargs):
        return ConformanceChecker(GPUConfig(**config_kwargs))

    def test_clock_regression(self):
        checker = self._checker()
        checker.emit(HWQ_BIND, ts=10.0, swq=1, bound=1)
        checker.emit(HWQ_RELEASE, ts=5.0, swq=1, bound=0)
        assert [v.invariant for v in checker.violations] == ["clock"]

    def test_harness_events_exempt_from_clock(self):
        checker = self._checker()
        checker.emit(HWQ_BIND, ts=10.0, swq=1, bound=1)
        checker.emit("harness.run_start", ts=0.0)
        assert checker.violations == []

    def test_double_bind_and_overflow(self):
        checker = self._checker(num_hwq=2)
        checker.emit(HWQ_BIND, ts=0.0, swq=1, bound=1)
        checker.emit(HWQ_BIND, ts=1.0, swq=1, bound=1)
        assert any("already bound" in v.message for v in checker.violations)
        checker.emit(HWQ_BIND, ts=2.0, swq=2, bound=2)
        checker.emit(HWQ_BIND, ts=3.0, swq=3, bound=3)
        assert any(
            v.invariant == "hwq" and "concurrently bound" in v.message
            for v in checker.violations
        )

    def test_release_without_bind(self):
        checker = self._checker()
        checker.emit(HWQ_RELEASE, ts=0.0, swq=7, bound=0)
        assert any("was not bound" in v.message for v in checker.violations)

    def test_occupancy_counter_mismatch(self):
        checker = self._checker()
        checker.emit(HWQ_BIND, ts=0.0, swq=1, bound=5)  # mirror holds 1
        assert any(
            v.invariant == "hwq" and "reports bound=5" in v.message
            for v in checker.violations
        )

    def test_fcfs_bind_order(self):
        checker = self._checker(num_hwq=1)
        # Stream 1 binds immediately; streams 2 and 3 must wait.
        checker.emit(HWQ_BIND, ts=0.0, swq=1, bound=1)
        checker.emit(
            KERNEL_ARRIVAL, ts=0.0, kernel_id=1, num_ctas=1, stream=1
        )
        checker.emit(
            KERNEL_ARRIVAL, ts=1.0, kernel_id=2, num_ctas=1, stream=2
        )
        checker.emit(
            KERNEL_ARRIVAL, ts=2.0, kernel_id=3, num_ctas=1, stream=3
        )
        checker.emit(HWQ_RELEASE, ts=3.0, swq=1, bound=0)
        # Binding stream 3 jumps the queue: stream 2 waited longer.
        checker.emit(HWQ_BIND, ts=3.0, swq=3, bound=1)
        assert any(v.invariant == "fcfs" for v in checker.violations)

    def test_duplicate_arrival(self):
        checker = self._checker()
        for ts in (0.0, 1.0):
            checker.emit(
                KERNEL_ARRIVAL, ts=ts, kernel_id=9, num_ctas=1, stream=1
            )
        assert any("arrived twice" in v.message for v in checker.violations)

    def test_cta_conservation(self):
        checker = self._checker()
        checker.emit(
            CTA_FINISH, ts=0.0, kernel_id=1, cta_index=0, smx=0, exec_time=1.0
        )
        assert any(
            "finished without being dispatched" in v.message
            for v in checker.violations
        )

    def test_cta_double_dispatch(self):
        checker = self._checker()
        checker.emit(
            KERNEL_ARRIVAL, ts=0.0, kernel_id=1, num_ctas=2, stream=1
        )
        for ts in (1.0, 2.0):
            checker.emit(
                CTA_DISPATCH, ts=ts, kernel_id=1, cta_index=0, smx=0,
                is_child=False, warps=1, threads=32, regs=32, shmem=0,
            )
        assert any(
            "dispatched twice" in v.message for v in checker.violations
        )

    def test_residency_cap(self):
        checker = self._checker()
        cap = GPUConfig().max_threads_per_smx
        checker.emit(
            KERNEL_ARRIVAL, ts=0.0, kernel_id=1, num_ctas=2, stream=1
        )
        for cta in range(2):
            checker.emit(
                CTA_DISPATCH, ts=1.0, kernel_id=1, cta_index=cta, smx=0,
                is_child=False, warps=cap // 32, threads=cap, regs=0, shmem=0,
            )
        assert any(v.invariant == "residency" for v in checker.violations)

    def test_completion_with_unfinished_ctas(self):
        checker = self._checker()
        checker.emit(
            KERNEL_ARRIVAL, ts=0.0, kernel_id=1, num_ctas=3, stream=1
        )
        checker.emit(
            KERNEL_COMPLETE, ts=5.0, kernel_id=1, is_child=False, stream=1
        )
        assert any(
            v.invariant == "conservation" and "CTAs finished" in v.message
            for v in checker.violations
        )

    def test_finalize_flags_incomplete_kernels(self):
        checker = self._checker()
        checker.emit(
            KERNEL_ARRIVAL, ts=0.0, kernel_id=1, num_ctas=1, stream=1
        )
        checker.finalize()
        assert any("never completed" in v.message for v in checker.violations)

    @staticmethod
    def _merge_event(**overrides):
        """A well-formed two-constituent block-scope merge event."""
        args = dict(
            child_kernel_id=100,
            kernel="c+merge2",
            scope="block",
            num_ctas=3,
            num_requests=2,
            stream=5,
            src=[[1, 0, 0, 3, 1], [1, 0, 1, 40, 2]],
        )
        args.update(overrides)
        return args

    def test_merge_cta_conservation(self):
        checker = self._checker()
        checker.emit(LAUNCH_MERGE, ts=0.0, **self._merge_event(num_ctas=4))
        assert any(
            v.invariant == "merge" and "conservation" in v.message
            for v in checker.violations
        )

    def test_merge_scope_mixing(self):
        checker = self._checker()
        checker.emit(
            LAUNCH_MERGE,
            ts=0.0,
            **self._merge_event(src=[[1, 0, 0, 3, 1], [1, 1, 0, 3, 2]]),
        )
        assert any(
            v.invariant == "merge" and "distinct" in v.message
            for v in checker.violations
        )

    def test_merge_scope_must_match_scheme(self):
        checker = ConformanceChecker(GPUConfig(), scheme="aggregate:grid")
        checker.emit(LAUNCH_MERGE, ts=0.0, **self._merge_event())
        assert any(
            v.invariant == "merge" and "expected scope" in v.message
            for v in checker.violations
        )

    def test_merge_batch_bound(self):
        checker = ConformanceChecker(GPUConfig(), scheme="consolidate:2")
        checker.emit(
            LAUNCH_MERGE,
            ts=0.0,
            **self._merge_event(
                scope="cta",
                num_ctas=5,
                num_requests=3,
                src=[[1, 0, 0, 3, 1], [1, 0, 1, 40, 2], [1, 0, 1, 41, 2]],
            ),
        )
        assert any(
            v.invariant == "merge" and "batch bound" in v.message
            for v in checker.violations
        )

    def test_merge_arrival_cta_count_cross_check(self):
        checker = self._checker()
        checker.emit(LAUNCH_MERGE, ts=0.0, **self._merge_event())
        checker.emit(
            KERNEL_ARRIVAL, ts=1.0, kernel_id=100, num_ctas=7, stream=5
        )
        assert any(
            v.invariant == "merge" and "promised" in v.message
            for v in checker.violations
        )

    def test_merge_never_arriving_flagged_at_finalize(self):
        checker = self._checker()
        checker.emit(LAUNCH_MERGE, ts=0.0, **self._merge_event())
        checker.finalize()
        assert any(
            v.invariant == "merge" and "never arrived" in v.message
            for v in checker.violations
        )


class TestSmxSelfAudit:
    def test_fresh_smx_is_clean(self):
        assert SMX(0, GPUConfig()).check_invariants() == []

    def test_counter_drift_detected(self):
        smx = SMX(0, GPUConfig())
        smx.used_threads += 64  # simulate a lost decrement
        problems = smx.check_invariants()
        assert any("used_threads" in p for p in problems)


class TestSeededBugs:
    """The acceptance criterion: a deliberately seeded ordering bug must be
    caught by BOTH the invariant checker and the golden-trace diff."""

    @staticmethod
    def _gmu_trace(**gmu_flags):
        """BFS-citation / baseline-dp with only 2 HWQs, so streams queue."""

        class Sim(GPUSimulator):
            gmu_factory = functools.partial(GMU, **gmu_flags)

        return _checked_run(
            "BFS-citation", "baseline-dp",
            config=GPUConfig(num_hwq=2), sim_cls=Sim,
        )

    def test_lifo_bind_caught_by_checker_and_diff(self):
        clean, clean_result = self._gmu_trace()
        clean.finalize(clean_result)
        assert clean.violations == []

        buggy, buggy_result = self._gmu_trace(lifo_bind=True)
        buggy.finalize(buggy_result)
        # Leg 1: the invariant checker flags the FCFS violation directly.
        assert any(v.invariant == "fcfs" for v in buggy.violations)
        # Leg 2: the golden-trace diff reports the first divergence.
        divergence = diff_traces(
            canonical_events(clean.events()),
            canonical_events(buggy.events()),
        )
        assert divergence is not None
        assert divergence.index >= 0
        report = str(divergence)
        assert "diverge" in report and str(divergence.index) in report

    @pytest.mark.slow
    def test_reverse_rr_caught_by_trace_diff(self):
        """Reversed GMU round-robin passes every local invariant (it is a
        fairness bug, not a correctness bug) — only the trace diff sees it."""

        def join_trace(**gmu_flags):
            class Sim(GPUSimulator):
                gmu_factory = functools.partial(GMU, **gmu_flags)

            return _checked_run("JOIN-uniform", "baseline-dp", sim_cls=Sim)

        clean, _ = join_trace()
        buggy, buggy_result = join_trace(reverse_rr=True)
        buggy.finalize(buggy_result)
        assert not any(v.invariant == "fcfs" for v in buggy.violations)
        divergence = diff_traces(
            canonical_events(clean.events()),
            canonical_events(buggy.events()),
        )
        assert divergence is not None


class TestSchemeZooCleanRuns:
    """Every new scheme passes its own per-scheme invariants end-to-end."""

    @pytest.mark.parametrize(
        "scheme",
        ["consolidate", "consolidate:4", "aggregate:warp",
         "aggregate:block", "aggregate:grid", "acs"],
    )
    def test_zero_violations(self, scheme):
        checker, result = _checked_run("BFS-citation", scheme)
        checker.finalize(result)
        assert checker.violations == []
        assert checker.events_checked > 0

    @pytest.mark.parametrize("scheme", ["consolidate", "aggregate:block"])
    def test_merge_events_present(self, scheme):
        checker, result = _checked_run("BFS-citation", scheme)
        checker.finalize(result)
        assert result.stats.merged_kernels_launched > 0
        assert any(e.kind == LAUNCH_MERGE for e in checker.events())


class TestSchemeZooSeededBugs:
    """Each scheme-zoo invariant is proven live by a seeded engine bug:
    breaking the behaviour it guards must produce violations, and the
    matching clean run must not."""

    def test_unpadded_merge_breaks_cta_conservation(self):
        clean, clean_result = _checked_run("BFS-citation", "consolidate")
        clean.finalize(clean_result)
        assert clean.violations == []

        buggy, buggy_result = _checked_run(
            "BFS-citation", "consolidate", merge_bug="unpadded"
        )
        buggy.finalize(buggy_result)
        merge = [v for v in buggy.violations if v.invariant == "merge"]
        assert merge, "dropping the zero-pad must violate CTA conservation"
        assert any("conservation" in v.message for v in merge)

    def test_cross_warp_merge_breaks_scope_bound(self):
        clean, clean_result = _checked_run("BFS-citation", "aggregate:warp")
        clean.finalize(clean_result)
        assert clean.violations == []

        buggy, buggy_result = _checked_run(
            "BFS-citation", "aggregate:warp", merge_bug="cross_warp"
        )
        buggy.finalize(buggy_result)
        merge = [v for v in buggy.violations if v.invariant == "merge"]
        assert merge, "collapsing warp ids must violate the scope bound"
        assert any("contexts" in v.message for v in merge)

    @staticmethod
    def _acs_trace(**gmu_flags):
        """BFS-citation / acs with 2 HWQs and per-parent-CTA streams, so
        multiple kernels share a stream and streams queue for binding."""

        class Sim(GPUSimulator):
            gmu_factory = functools.partial(
                GMU, bind_policy="acs", **gmu_flags
            )

        return _checked_run(
            "BFS-citation", "acs",
            config=GPUConfig(num_hwq=2),
            stream_policy=PerParentCTAStream(),
            sim_cls=Sim,
        )

    def test_acs_unguarded_breaks_same_stream_order(self):
        clean, clean_result = self._acs_trace()
        clean.finalize(clean_result)
        assert clean.violations == []

        buggy, buggy_result = self._acs_trace(acs_unguarded=True)
        buggy.finalize(buggy_result)
        # Reordering *within* a stream is exactly what ACS must never do;
        # the same-stream FIFO invariant reports under "fcfs".
        assert any(v.invariant == "fcfs" for v in buggy.violations)

    def test_acs_reorders_but_clean_golden_differs_from_fcfs(self):
        """ACS genuinely reorders cross-stream binds (it is not a no-op):
        with the identical admission policy (baseline-dp shares ACS's
        StaticThreshold) and per-child streams queueing on 2 HWQs, its
        trace diverges from the FCFS trace."""
        acs, acs_result = _checked_run(
            "BFS-citation", "acs", config=GPUConfig(num_hwq=2)
        )
        acs.finalize(acs_result)
        assert acs.violations == []
        fcfs, _ = _checked_run(
            "BFS-citation", "baseline-dp", config=GPUConfig(num_hwq=2)
        )
        divergence = diff_traces(
            canonical_events(fcfs.events()),
            canonical_events(acs.events()),
        )
        assert divergence is not None
