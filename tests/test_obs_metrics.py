"""Tests for repro.obs.metrics: instruments, registry, exporters.

The headline property: a Histogram's p50/p95/p99 always lands within one
bucket width of the exact nearest-rank quantile computed over the raw
sorted samples (hypothesis pins this over arbitrary sample sets).
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_IO_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_quantile,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == 3.0


class TestHistogramBasics:
    def test_bounds_must_be_positive_increasing(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([0.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])

    def test_rejects_negative_observations(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).observe(-0.1)

    def test_counts_land_in_the_right_buckets(self):
        hist = Histogram([1.0, 2.0])
        for value in (0.5, 1.0, 1.5, 5.0):
            hist.observe(value)
        # (0,1], (1,2], overflow
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(8.0)
        assert hist.min == 0.5
        assert hist.max == 5.0

    def test_quantile_of_empty_histogram_is_none(self):
        hist = Histogram([1.0])
        assert hist.quantile(0.5) is None
        assert hist.percentiles() == {}
        assert hist.summary() == {"count": 0}

    def test_quantile_validates_range(self):
        hist = Histogram([1.0])
        hist.observe(0.5)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_clamped_to_observed_extremes(self):
        hist = Histogram([10.0])
        hist.observe(2.0)
        hist.observe(3.0)
        for q in (0.0, 0.5, 1.0):
            estimate = hist.quantile(q)
            assert 2.0 <= estimate <= 3.0

    def test_overflow_bucket_upper_edge_is_observed_max(self):
        hist = Histogram([1.0])
        hist.observe(42.0)
        assert hist.bucket_edges(1) == (1.0, 42.0)
        assert hist.quantile(1.0) == pytest.approx(42.0)

    def test_summary_has_all_digest_keys(self):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS)
        for value in (0.001, 0.01, 0.1):
            hist.observe(value)
        summary = hist.summary()
        assert set(summary) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99",
        }


class TestExactQuantile:
    def test_matches_nearest_rank_selection(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert exact_quantile(samples, 0.0) == 1.0
        assert exact_quantile(samples, 0.5) == 3.0
        assert exact_quantile(samples, 1.0) == 5.0

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)
        with pytest.raises(ValueError):
            exact_quantile([1.0], 2.0)


def _bucket_width_at(hist, value):
    lower, upper = hist.bucket_edges(hist._bucket_index(value))
    return upper - lower


class TestQuantileAccuracyProperty:
    """estimate and exact reference always share one bucket interval."""

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(
                min_value=0.0, max_value=120.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=80,
        ),
        q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 0.0, 1.0]),
    )
    def test_within_one_bucket_width(self, samples, q):
        hist = Histogram(DEFAULT_LATENCY_BUCKETS)
        for value in samples:
            hist.observe(value)
        estimate = hist.quantile(q)
        exact = exact_quantile(samples, q)
        width = _bucket_width_at(hist, exact)
        assert abs(estimate - exact) <= width + 1e-9
        # And the clamp guarantee: never outside the observed range.
        assert min(samples) - 1e-12 <= estimate <= max(samples) + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(
        samples=st.lists(
            st.floats(
                min_value=0.0, max_value=2.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=50,
        )
    )
    def test_headline_percentiles_within_one_bucket(self, samples):
        hist = Histogram(DEFAULT_IO_BUCKETS)
        for value in samples:
            hist.observe(value)
        percentiles = hist.percentiles()
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            exact = exact_quantile(samples, q)
            width = _bucket_width_at(hist, exact)
            assert abs(percentiles[name] - exact) <= width + 1e-9


class TestRegistry:
    def test_instruments_are_created_once_and_shared(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", route="cached")
        b = registry.counter("requests", route="cached")
        assert a is b
        assert registry.counter("requests", route="inline") is not a
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_histogram_buckets_respected_on_first_use(self):
        registry = MetricsRegistry()
        hist = registry.histogram("io", buckets=(0.1, 1.0))
        assert hist.bounds == (0.1, 1.0)

    def test_clear_empties_the_registry(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.clear()
        assert len(registry) == 0

    def test_to_dict_sections_and_keys(self):
        registry = MetricsRegistry()
        registry.counter("req", route="batch").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(0.02)
        payload = registry.to_dict()
        assert payload["counters"] == {"req{route=batch}": 3.0}
        assert payload["gauges"] == {"depth": 7.0}
        assert payload["histograms"]["lat"]["count"] == 1
        json.dumps(payload)  # JSON-ready, no exotic values

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("service.requests_total", route="cached").inc(2)
        registry.gauge("service.queue_depth").set(4)
        hist = registry.histogram("service.lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(3.0)
        text = registry.to_prometheus()
        assert "# TYPE service_requests_total counter" in text
        assert 'service_requests_total{route="cached"} 2' in text
        assert "service_queue_depth 4" in text
        # Cumulative buckets: 1 at <=0.1, 2 at <=1.0, 3 at +Inf.
        assert 'service_lat_bucket{le="0.1"} 1' in text
        assert 'service_lat_bucket{le="1"} 2' in text
        assert 'service_lat_bucket{le="+Inf"} 3' in text
        assert "service_lat_count 3" in text
        assert text.endswith("\n")

    def test_prometheus_empty_registry_is_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestDefaultBucketLadders:
    def test_ladders_are_strictly_increasing(self):
        for ladder in (DEFAULT_LATENCY_BUCKETS, DEFAULT_IO_BUCKETS):
            assert all(a < b for a, b in zip(ladder, ladder[1:]))
            assert all(b > 0 for b in ladder)
            assert not math.isinf(ladder[-1])
