"""Load/soak suite for the batched async simulation service.

The contract under test (ISSUE 5): a 500-request seeded soak must lose
nothing — ``submitted == completed + failed + shed + in_flight`` with
``lost == 0`` — must coalesce every duplicate onto a single pool run,
and every result handed back must be bit-identical to a direct serial
:meth:`Runner.run` of the same config.  Shedding is exercised by a
deterministic scenario (primed cost model, tiny deadline) rather than by
wall-clock racing, so the suite passes identically on any host.

Traffic comes from :func:`repro.service.generate_traffic`, which is a
pure function of its seed: a soak failure reproduces exactly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServiceOverloaded
from repro.harness.runner import RunConfig, Runner
from repro.service import (
    ServiceConfig,
    SimulationService,
    TrafficRequest,
    dump_requests,
    generate_traffic,
    load_requests,
)

SOAK_SEED = 42
SOAK_REQUESTS = 500


def drive(requests, *, config=None, runner=None, prime=None):
    """Burst-submit ``requests`` through one service; return (stats, results).

    Submissions happen back-to-back on the event loop (no awaits on the
    handles in between), so every duplicate of an un-finished config
    must coalesce — the scheduler cannot run until the burst yields.
    ``prime`` is an optional callback run against the service before any
    traffic (e.g. to seed the cost model deterministically).
    """

    async def _drive():
        service = SimulationService(
            runner if runner is not None else Runner(),
            config=config,
        )
        if prime is not None:
            prime(service)
        handles = []
        shed = []
        async with service:
            for request in requests:
                try:
                    handles.append(await service.submit(request.config()))
                except ServiceOverloaded as exc:
                    shed.append(exc)
            results = await service.gather(handles)
        return service.stats(), results, shed

    return asyncio.run(_drive())


# ----------------------------------------------------------------------
# The soak
# ----------------------------------------------------------------------
class TestSoak:
    @pytest.fixture(scope="class")
    def soak(self):
        requests = generate_traffic(
            SOAK_REQUESTS, seed=SOAK_SEED, seeds=(1, 2)
        )
        stats, results, shed = drive(
            requests, config=ServiceConfig(jobs=2, max_batch=8)
        )
        return requests, stats, results, shed

    def test_nothing_is_lost(self, soak):
        requests, stats, results, shed = soak
        assert stats.submitted == SOAK_REQUESTS
        assert stats.lost == 0
        assert stats.in_flight == 0
        assert stats.failed == 0
        assert stats.shed == 0 and not shed  # no deadline configured
        assert stats.completed == SOAK_REQUESTS
        assert len(results) == SOAK_REQUESTS

    def test_every_duplicate_coalesces_onto_one_pool_run(self, soak):
        requests, stats, results, _ = soak
        unique = {request.config().key() for request in requests}
        # Burst submission: the first sighting of each unique config is
        # admitted, every other submission coalesces; the cache cannot
        # hit because nothing finishes until the burst ends.
        assert stats.admitted == len(unique)
        assert stats.coalesced == SOAK_REQUESTS - len(unique)
        assert stats.cache_hits == 0
        # The pool simulated each unique config exactly once.
        assert stats.pool_runs == len(unique)
        assert stats.quarantined == 0

    def test_batches_respect_max_batch(self, soak):
        _, stats, _, _ = soak
        assert stats.batches >= 1
        assert 1 <= stats.max_batch_size <= 8
        assert stats.peak_queue_depth >= stats.max_batch_size

    def test_results_bit_identical_to_serial_runner(self, soak):
        requests, _, results, _ = soak
        serial = Runner()
        expected = {}
        for request, result in zip(requests, results):
            key = request.config().key()
            if key not in expected:
                expected[key] = serial.run(request.config()).to_dict()
            assert result.to_dict() == expected[key], (
                f"service result for {request.benchmark}/{request.scheme} "
                f"(seed {request.seed}) diverged from serial Runner.run"
            )

    def test_coalesced_waiters_share_one_result_object(self, soak):
        requests, _, results, _ = soak
        by_key = {}
        for request, result in zip(requests, results):
            key = request.config().key()
            if key in by_key:
                assert result is by_key[key]
            else:
                by_key[key] = result


# ----------------------------------------------------------------------
# Cache path: a drained service answers repeats without the pool
# ----------------------------------------------------------------------
def test_second_wave_is_pure_cache():
    requests = generate_traffic(40, seed=7)
    runner = Runner()

    async def _two_waves():
        service = SimulationService(runner, config=ServiceConfig(jobs=2))
        async with service:
            first = [
                await service.submit(request.config())
                for request in requests
            ]
            await service.gather(first)
            mid = service.stats()
            second = [
                await service.submit(request.config())
                for request in requests
            ]
            await service.gather(second)
            return mid, service.stats()

    mid, final = asyncio.run(_two_waves())
    # Wave two never created a job: every submission was a cache hit.
    assert final.cache_hits - mid.cache_hits == len(requests)
    assert final.admitted == mid.admitted
    assert final.pool_runs == mid.pool_runs
    assert final.lost == 0


# ----------------------------------------------------------------------
# Shedding: deterministic, no wall-clock racing
# ----------------------------------------------------------------------
def test_overload_sheds_with_predicted_delay_evidence():
    """Prime the cost model, fill the queue, and the next distinct
    request must shed with the SPAWN-style evidence attached."""
    heavy = TrafficRequest("GC-citation", "flat", seed=1)
    victim = TrafficRequest("GC-citation", "flat", seed=2)  # distinct key

    async def _scenario():
        service = SimulationService(
            Runner(),
            config=ServiceConfig(jobs=2, deadline_ms=1.0),
        )
        # 10 predicted seconds per run: any queued job pushes the
        # predicted delay (backlog / workers = 5s) far past 1ms.
        service.model.observe("GC-citation", "flat", 10.0)
        async with service:
            job = await service.submit(heavy.config())
            with pytest.raises(ServiceOverloaded) as excinfo:
                await service.submit(victim.config())
            await job
        return service.stats(), excinfo.value

    stats, error = asyncio.run(_scenario())
    decision = error.decision
    assert decision is not None
    assert decision.verdict == "shed"
    assert decision.predicted_cost_s == pytest.approx(10.0)
    assert decision.predicted_delay_s == pytest.approx(5.0)
    assert decision.deadline_s == pytest.approx(0.001)
    assert decision.queue_depth == 1
    assert "predicted queue delay" in str(error)
    # The shed submission is accounted for, not lost.
    assert stats.shed == 1
    assert stats.submitted == 2
    assert stats.completed == 1
    assert stats.lost == 0


def test_duplicates_coalesce_instead_of_shedding():
    """An exact duplicate of an in-flight job joins it — coalescing is
    checked before admission, so hot traffic never sheds itself."""
    request = TrafficRequest("GC-citation", "flat", seed=1)

    async def _scenario():
        service = SimulationService(
            Runner(),
            config=ServiceConfig(jobs=2, deadline_ms=1.0),
        )
        service.model.observe("GC-citation", "flat", 10.0)
        async with service:
            first = await service.submit(request.config())
            second = await service.submit(request.config())
            assert second is first
            await service.gather([first, second])
        return service.stats()

    stats = asyncio.run(_scenario())
    assert stats.coalesced == 1
    assert stats.shed == 0
    assert stats.lost == 0


def test_max_queue_cap_sheds_regardless_of_deadline():
    requests = [
        TrafficRequest("GC-citation", "flat", seed=seed)
        for seed in range(1, 5)
    ]

    async def _scenario():
        service = SimulationService(
            Runner(),
            config=ServiceConfig(jobs=1, max_queue=2),
        )
        # A known cost disables the bootstrap-admit path; without a
        # deadline only the depth cap can shed.
        service.model.observe("GC-citation", "flat", 0.5)
        shed = 0
        handles = []
        async with service:
            for request in requests:
                try:
                    handles.append(await service.submit(request.config()))
                except ServiceOverloaded:
                    shed += 1
            await service.gather(handles)
        return service.stats(), shed

    stats, shed = asyncio.run(_scenario())
    assert shed == 2  # the 3rd and 4th distinct jobs found the queue full
    assert stats.shed == 2
    assert stats.completed == 2
    assert stats.lost == 0


# ----------------------------------------------------------------------
# Inline path ("the parent does the work")
# ----------------------------------------------------------------------
def test_small_jobs_run_inline_and_match_serial():
    request = TrafficRequest("GC-citation", "flat", seed=1)

    async def _scenario():
        service = SimulationService(
            Runner(),
            config=ServiceConfig(jobs=2, inline_threshold_ms=60_000.0),
        )
        # Bootstrap first: with no observation the verdict must be
        # admit, mirroring Algorithm 1's launch-when-t_cta-unknown.
        first = await service.__aenter__()
        assert first is service
        job = await service.submit(request.config())
        await job
        assert service.stats().inline == 0
        assert service.stats().admitted == 1
        # Now the pair is priced below the (huge) threshold: inline.
        other = TrafficRequest("GC-citation", "flat", seed=2)
        inline_job = await service.submit(other.config())
        result = await inline_job
        await service.close()
        return service.stats(), inline_job.state, result

    stats, state, result = asyncio.run(_scenario())
    assert stats.inline == 1
    assert state == "inline"
    assert stats.lost == 0
    serial = Runner().run(RunConfig("GC-citation", "flat", seed=2))
    assert result.to_dict() == serial.to_dict()


# ----------------------------------------------------------------------
# Traffic generator: deterministic, serializable
# ----------------------------------------------------------------------
def test_traffic_is_a_pure_function_of_its_seed():
    a = generate_traffic(200, seed=SOAK_SEED, seeds=(1, 2))
    b = generate_traffic(200, seed=SOAK_SEED, seeds=(1, 2))
    c = generate_traffic(200, seed=SOAK_SEED + 1, seeds=(1, 2))
    assert a == b
    assert a != c
    # Zipf-ish skew: the hottest pair sees strictly more traffic than
    # the coldest, so coalescing genuinely gets exercised.
    counts = {}
    for request in a:
        counts[(request.benchmark, request.scheme)] = (
            counts.get((request.benchmark, request.scheme), 0) + 1
        )
    assert max(counts.values()) > min(counts.values())


def test_request_file_roundtrip(tmp_path):
    requests = generate_traffic(25, seed=3, mean_gap_s=0.01)
    path = dump_requests(requests, tmp_path / "traffic.json")
    assert load_requests(path) == requests
    # Arrival offsets are monotone under a Poisson gap process.
    ats = [request.at for request in requests]
    assert ats == sorted(ats)
