"""Unit tests for statistics collection."""

import pytest

from repro.sim.stats import KernelRecord, SimStats, TraceSample


class TestKernelRecord:
    def test_queuing_latency(self):
        record = KernelRecord(0, "k", False, 0, 1)
        assert record.queuing_latency is None
        record.arrival_time = 100.0
        record.first_dispatch_time = 150.0
        assert record.queuing_latency == 50.0

    def test_launch_overhead(self):
        record = KernelRecord(0, "k", True, 1, 1)
        record.launch_call_time = 10.0
        record.arrival_time = 30.0
        assert record.launch_overhead == 20.0


class TestOccupancy:
    def make_stats(self):
        stats = SimStats(trace_interval=10.0)
        stats.set_capacity(warps=100, regs=1000, shmem=1000)
        return stats

    def test_constant_occupancy(self):
        stats = self.make_stats()
        stats.record_state(0.0, parent_ctas=1, child_ctas=0, warps=50, regs=0, shmem=0)
        stats.finalize(100.0)
        assert stats.smx_occupancy == pytest.approx(0.5)

    def test_time_weighted_occupancy(self):
        stats = self.make_stats()
        stats.record_state(0.0, parent_ctas=1, child_ctas=0, warps=100, regs=0, shmem=0)
        stats.record_state(50.0, parent_ctas=0, child_ctas=0, warps=0, regs=0, shmem=0)
        stats.finalize(100.0)
        assert stats.smx_occupancy == pytest.approx(0.5)

    def test_zero_makespan_occupancy(self):
        stats = self.make_stats()
        assert stats.smx_occupancy == 0.0

    def test_utilization_takes_max_resource(self):
        stats = self.make_stats()
        stats.record_state(0.0, parent_ctas=1, child_ctas=0, warps=10, regs=900, shmem=0)
        stats.record_state(20.0, parent_ctas=1, child_ctas=0, warps=10, regs=900, shmem=0)
        # Utilization in trace should reflect regs (0.9), not warps (0.1).
        assert stats.trace[-1].utilization == pytest.approx(0.9)


class TestTrace:
    def test_trace_sampling_respects_interval(self):
        stats = SimStats(trace_interval=100.0)
        stats.set_capacity(1, 1, 1)
        for t in range(0, 1000, 10):
            stats.record_state(
                float(t), parent_ctas=1, child_ctas=0, warps=0, regs=0, shmem=0
            )
        assert len(stats.trace) <= 11

    def test_trace_sample_total(self):
        sample = TraceSample(0.0, parent_ctas=3, child_ctas=4, utilization=0.5)
        assert sample.total_ctas == 7


class TestDerived:
    def test_offload_fraction(self):
        stats = SimStats()
        stats.items_in_parent = 30
        stats.items_in_child = 70
        assert stats.offload_fraction == pytest.approx(0.7)

    def test_offload_fraction_empty(self):
        assert SimStats().offload_fraction == 0.0

    def test_l2_hit_rate(self):
        stats = SimStats()
        stats.l2_hits, stats.l2_misses = 80, 20
        assert stats.l2_hit_rate == pytest.approx(0.8)

    def test_launch_cdf_sorted(self):
        stats = SimStats()
        stats.launch_times = [30.0, 10.0, 20.0]
        assert stats.launch_cdf() == [(10.0, 1), (20.0, 2), (30.0, 3)]

    def test_mean_child_cta_time(self):
        stats = SimStats()
        stats.child_cta_exec_times = [100.0, 200.0]
        assert stats.mean_child_cta_time == 150.0

    def test_mean_child_queuing_latency(self):
        stats = SimStats()
        rec = KernelRecord(0, "c", True, 1, 1)
        rec.arrival_time, rec.first_dispatch_time = 0.0, 40.0
        stats.kernels[0] = rec
        assert stats.mean_child_queuing_latency == 40.0
