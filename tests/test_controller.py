"""Unit tests for the SPAWN controller (Algorithm 1)."""

import pytest

from repro.core.ccqs import CCQS
from repro.core.controller import SpawnController
from repro.core.metrics import MetricsMonitor
from repro.errors import ConfigError


def make_controller(max_queue=1000, overhead=20000.0, **kwargs):
    monitor = MetricsMonitor(window_cycles=128)
    ccqs = CCQS(monitor, max_queue_size=max_queue)
    controller = SpawnController(
        ccqs=ccqs, launch_overhead_cycles=overhead, keep_trace=True, **kwargs
    )
    return controller, monitor


def feed_history(monitor, *, tcta=100.0, ncon=4):
    """Install a throughput history: ncon concurrent CTAs, tcta each.

    Leaves the monitor with n == 0, tcta/twarp == tcta, and a completed
    concurrency window averaging ``ncon``.
    """
    monitor.on_ctas_admitted(ncon)
    for _ in range(ncon):
        monitor.on_cta_started(0.0)
    window = float(monitor._ncon.window)
    monitor.advance(window)
    for i in range(ncon):
        monitor.on_cta_finished(window + i, exec_time=tcta, items_per_thread=1)


class TestBootstrap:
    def test_launches_unconditionally_before_first_completion(self):
        controller, _ = make_controller()
        for _ in range(5):
            assert controller.decide(time=0.0, num_ctas=100, workload_items=1)
        assert controller.launched == 5

    def test_bootstrap_admits_to_ccqs(self):
        controller, monitor = make_controller()
        controller.decide(time=0.0, num_ctas=7, workload_items=1)
        assert monitor.n == 7


class TestDecisionRule:
    def test_large_workload_launches(self):
        controller, monitor = make_controller()
        feed_history(monitor, tcta=100.0, ncon=4)
        # t_parent = 10000 * 100 = 1e6 >> t_child = 20000 + small queue.
        assert controller.decide(time=300.0, num_ctas=2, workload_items=10000)

    def test_small_workload_declines(self):
        controller, monitor = make_controller()
        feed_history(monitor, tcta=100.0, ncon=4)
        # t_parent = 10 * 100 = 1000 << t_child >= 20000.
        assert not controller.decide(time=300.0, num_ctas=1, workload_items=10)

    def test_queue_backlog_tips_the_balance(self):
        controller, monitor = make_controller(overhead=0.0)
        feed_history(monitor, tcta=100.0, ncon=1)
        # Borderline workload: t_parent = 50*100 = 5000.
        # Empty queue: t_child = (0+1)*100 = 100 -> launch.
        assert controller.decide(time=300.0, num_ctas=1, workload_items=50)
        # Pile up backlog: n large makes t_child exceed t_parent.
        monitor.on_ctas_admitted(200)
        assert not controller.decide(time=301.0, num_ctas=1, workload_items=50)

    def test_queue_capacity_blocks_launch(self):
        controller, monitor = make_controller(max_queue=10)
        feed_history(monitor, tcta=100.0, ncon=4)
        monitor.on_ctas_admitted(8)
        # Even a hugely profitable launch is blocked by the CCQS bound.
        assert not controller.decide(time=300.0, num_ctas=5, workload_items=10**6)

    def test_equal_estimates_launch(self):
        """Algorithm 1 launches on t_child <= t_parent (inclusive)."""
        controller, monitor = make_controller(overhead=0.0)
        feed_history(monitor, tcta=100.0, ncon=1)
        # After history: n == 0. t_child = (0+1)*100 = 100; t_parent = 1*100.
        assert controller.decide(time=300.0, num_ctas=1, workload_items=1)


class TestBookkeeping:
    def test_trace_records_estimates(self):
        controller, monitor = make_controller()
        feed_history(monitor, tcta=100.0, ncon=4)
        controller.decide(time=300.0, num_ctas=2, workload_items=10)
        entry = controller.trace[-1]
        assert entry.launched is False
        assert entry.t_parent == pytest.approx(10 * monitor.twarp)
        assert entry.t_child > 0

    def test_counts(self):
        controller, monitor = make_controller()
        feed_history(monitor, tcta=100.0, ncon=4)
        controller.decide(time=300.0, num_ctas=1, workload_items=10**6)
        controller.decide(time=300.0, num_ctas=1, workload_items=1)
        assert controller.launched == 1
        assert controller.declined == 1
        assert controller.decisions == 2

    def test_auto_admit_disabled(self):
        monitor = MetricsMonitor(window_cycles=128)
        controller = SpawnController(
            ccqs=CCQS(monitor), launch_overhead_cycles=0.0, auto_admit=False
        )
        assert controller.decide(time=0.0, num_ctas=5, workload_items=1)
        assert monitor.n == 0  # the engine is responsible for admission

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigError):
            SpawnController(
                ccqs=CCQS(MetricsMonitor()), launch_overhead_cycles=-1.0
            )
