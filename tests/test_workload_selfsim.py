"""Structure and determinism tests for the self-similar workloads.

The cascade generator (``repro.workloads.selfsim``) must be reproducible
(same seed -> bit-identical masses), genuinely random across seeds,
mass-conserving up to integer flooring, and skew-ordered: the sparse
flavor's Beta(0.15, 0.15) splitting law concentrates far more mass in its
hottest segments than the dense flavor's Beta(0.45, 0.45).
"""

import numpy as np
import pytest

from repro.workloads import get_benchmark, selfsim
from repro.workloads.selfsim import MIN_OFFLOAD, cascade_items


class TestCascade:
    def test_segment_count_is_two_to_the_levels(self):
        items = cascade_items(10, 100_000, 0.5, 1)
        assert items.size == 2**10

    def test_mass_conservation_up_to_flooring(self):
        """int truncation loses < 1 item/segment; the floor adds <= 1."""
        total = 300_000
        items = cascade_items(selfsim.LEVELS, total, 0.45, 1)
        slack = items.size  # one item of slack per segment, both ways
        assert total - slack <= int(items.sum()) <= total + slack

    def test_every_segment_does_work(self):
        items = cascade_items(selfsim.LEVELS, 150_000, 0.15, 1)
        assert int(items.min()) >= 1

    def test_same_seed_is_deterministic(self):
        a = np.array(cascade_items(selfsim.LEVELS, 300_000, 0.45, 7))
        b = np.array(cascade_items(selfsim.LEVELS, 300_000, 0.45, 7))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = cascade_items(selfsim.LEVELS, 300_000, 0.45, 1)
        b = cascade_items(selfsim.LEVELS, 300_000, 0.45, 2)
        assert not np.array_equal(a, b)

    def test_sparse_is_spikier_than_dense(self):
        dense = cascade_items(selfsim.LEVELS, 300_000, 0.45, 1)
        sparse = cascade_items(selfsim.LEVELS, 300_000, 0.15, 1)
        assert sparse.max() / sparse.mean() > dense.max() / dense.mean()
        # The sparse top decile owns a larger share of total mass.
        def top_decile_share(items):
            k = items.size // 10
            return np.sort(items)[-k:].sum() / items.sum()
        assert top_decile_share(sparse) > top_decile_share(dense)

    def test_self_similarity_across_scales(self):
        """Zooming into one half shows the same splitting law: subtree
        skew is of the same order as whole-domain skew."""
        items = cascade_items(selfsim.LEVELS, 300_000, 0.3, 1)
        half = items[: items.size // 2]
        whole_cv = items.std() / items.mean()
        half_cv = half.std() / half.mean()
        assert half_cv > 0.25 * whole_cv

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            cascade_items(0, 100, 0.5, 1)
        with pytest.raises(ValueError):
            cascade_items(4, 0, 0.5, 1)
        with pytest.raises(ValueError):
            cascade_items(4, 100, 0.0, 1)
        with pytest.raises(ValueError):
            selfsim.build("nope")


class TestSelfSimApps:
    @pytest.mark.parametrize("flavor", ["dense", "sparse"])
    def test_flat_and_dp_agree_on_total_work(self, flavor):
        flat = selfsim.build(flavor, variant="flat", seed=1)
        dp = selfsim.build(flavor, variant="dp", seed=1)
        assert flat.flat_items == dp.flat_items

    @pytest.mark.parametrize("flavor", ["dense", "sparse"])
    def test_heavy_segments_become_launch_sites(self, flavor):
        items = cascade_items(
            selfsim.LEVELS,
            300_000 if flavor == "dense" else 150_000,
            0.45 if flavor == "dense" else 0.15,
            1,
        )
        app = selfsim.build(flavor, variant="dp", seed=1)
        sites = sum(k.num_child_requests() for k in app.kernels)
        assert sites == int((items > MIN_OFFLOAD).sum())

    def test_request_items_match_segment_mass(self):
        items = cascade_items(selfsim.LEVELS, 150_000, 0.15, 1)
        app = selfsim.build("sparse", variant="dp", seed=1)
        (spec,) = app.kernels
        for tid, req in spec.child_requests.items():
            for r in req if isinstance(req, (list, tuple)) else [req]:
                assert r.items == int(items[tid])

    def test_dense_has_more_sites_than_sparse(self):
        dense = selfsim.build("dense", variant="dp", seed=1)
        sparse = selfsim.build("sparse", variant="dp", seed=1)
        count = lambda app: sum(k.num_child_requests() for k in app.kernels)
        assert count(dense) > count(sparse)

    def test_registered_benchmarks_build_both_variants(self):
        for name in ("SelfSim-dense", "SelfSim-sparse"):
            bench = get_benchmark(name)
            assert bench.flat(1).flat_items == bench.dp(1).flat_items
            assert bench.default_threshold == MIN_OFFLOAD

    def test_cta_threads_override_propagates(self):
        app = get_benchmark("SelfSim-dense").dp(1, cta_threads=32)
        (spec,) = app.kernels
        reqs = [
            r
            for req in spec.child_requests.values()
            for r in (req if isinstance(req, (list, tuple)) else [req])
        ]
        assert reqs and all(r.cta_threads == 32 for r in reqs)
