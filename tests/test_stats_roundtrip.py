"""Strict-JSON round-trips for stats payloads with non-finite floats.

``json.dumps`` emits ``NaN``/``Infinity`` literals by default — not JSON.
The stats serializer tags non-finite floats (``{"$float": "nan"}``) so
``SimResult`` payloads survive ``allow_nan=False`` serialization (the
persistent store's contract) and decode back to the same values.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.store import open_store
from repro.sim.engine import SimResult
from repro.sim.stats import SimStats, decode_json_floats, encode_json_floats


def _stats_with(makespan=100.0, launch_times=(), exec_times=()):
    stats = SimStats()
    stats.makespan = makespan
    stats.launch_times = list(launch_times)
    stats.child_cta_exec_times = list(exec_times)
    return stats


def _roundtrip(stats):
    payload = json.loads(json.dumps(stats.to_dict(), allow_nan=False))
    return SimStats.from_dict(payload)


class TestEncodeDecode:
    def test_tags_every_nonfinite(self):
        encoded = encode_json_floats(
            {"a": float("nan"), "b": [float("inf"), -float("inf"), 1.5]}
        )
        assert encoded == {
            "a": {"$float": "nan"},
            "b": [{"$float": "inf"}, {"$float": "-inf"}, 1.5],
        }

    def test_decode_inverts_encode(self):
        value = {"x": [1.0, float("inf")], "y": {"z": -float("inf")}}
        decoded = decode_json_floats(encode_json_floats(value))
        assert decoded == value
        nan_back = decode_json_floats({"$float": "nan"})
        assert isinstance(nan_back, float) and math.isnan(nan_back)

    def test_finite_payloads_untouched(self):
        value = {"a": 1, "b": [2.5, "three"], "c": None}
        assert encode_json_floats(value) == value
        assert decode_json_floats(value) == value

    def test_unknown_tag_passes_through(self):
        assert decode_json_floats({"$float": "bogus"}) == {"$float": "bogus"}

    def test_tuples_become_lists(self):
        assert encode_json_floats((1.0, float("nan"))) == [
            1.0, {"$float": "nan"},
        ]


class TestStatsRoundtrip:
    def test_nan_makespan(self):
        back = _roundtrip(_stats_with(makespan=float("nan")))
        assert math.isnan(back.makespan)

    def test_inf_launch_times(self):
        stats = _stats_with(launch_times=[1.0, float("inf"), float("nan")])
        back = _roundtrip(stats)
        assert back.launch_times[1] == float("inf")
        assert math.isnan(back.launch_times[2])

    @given(
        values=st.lists(
            st.floats(allow_nan=True, allow_infinity=True), max_size=20
        ),
        makespan=st.floats(allow_nan=True, allow_infinity=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_float_payload_roundtrips(self, values, makespan):
        stats = _stats_with(
            makespan=makespan, launch_times=values, exec_times=values
        )
        back = _roundtrip(stats)
        # Encoded dicts compare equal even for NaN entries (tags are
        # plain strings), so this covers every field at once.
        assert back.to_dict() == stats.to_dict()


class TestStoreRoundtrip:
    def test_nonfinite_result_survives_the_store(self, tmp_path):
        stats = _stats_with(
            makespan=float("nan"), launch_times=[float("inf")]
        )
        result = SimResult("app", "policy", stats)
        store = open_store(tmp_path)
        path = store.save("ab" + "0" * 62, result)
        raw = path.read_text()
        assert "NaN" not in raw and "Infinity" not in raw
        loaded = store.load("ab" + "0" * 62)
        assert math.isnan(loaded.stats.makespan)
        assert loaded.stats.launch_times == [float("inf")]
        assert loaded.stats.to_dict() == stats.to_dict()
