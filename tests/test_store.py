"""Tests for the persistent on-disk result store (.repro-cache)."""

import json

import pytest

from repro.harness import store as store_mod
from repro.harness.runner import RunConfig, Runner
from repro.harness.store import ResultStore, open_store
from repro.obs.profile import REGISTRY
from repro.sim.config import GPUConfig

FAST = "GC-citation"


@pytest.fixture
def config():
    return GPUConfig()


@pytest.fixture
def run_config():
    return RunConfig(benchmark=FAST, scheme="spawn")


class TestKeying:
    def test_key_is_stable(self, config, run_config):
        key1 = ResultStore.key_for(run_config, config, 1000)
        key2 = ResultStore.key_for(run_config, config, 1000)
        assert key1 == key2
        assert len(key1) == 64  # sha256 hex

    def test_every_run_field_participates(self, config):
        base = RunConfig(benchmark=FAST, scheme="spawn")
        variants = [
            RunConfig(benchmark="MM-small", scheme="spawn"),
            RunConfig(benchmark=FAST, scheme="flat"),
            RunConfig(benchmark=FAST, scheme="spawn", seed=2),
            RunConfig(benchmark=FAST, scheme="spawn", cta_threads=64),
            RunConfig(benchmark=FAST, scheme="spawn", stream_policy="per-parent-cta"),
            RunConfig(benchmark=FAST, scheme="spawn", trace_interval=500.0),
            RunConfig(benchmark=FAST, scheme="spawn", engine="fast"),
        ]
        base_key = ResultStore.key_for(base, config, 1000)
        for variant in variants:
            assert ResultStore.key_for(variant, config, 1000) != base_key

    def test_engine_round_trips_without_collision(self, tmp_path, config):
        """Fast and reference results for the same run never share an entry."""
        store = open_store(tmp_path)
        runner = Runner(config, store=store)
        default_cfg = RunConfig(benchmark=FAST, scheme="spawn")
        fast_cfg = RunConfig(benchmark=FAST, scheme="spawn", engine="fast")
        default_result = runner.run(default_cfg)
        fast_result = runner.run(fast_cfg)
        assert ResultStore.key_for(default_cfg, config, runner.max_events) != (
            ResultStore.key_for(fast_cfg, config, runner.max_events)
        )
        # A fresh runner on the same store answers both from disk, each
        # from its own entry, and the payloads round-trip identically.
        reread = Runner(config, store=open_store(tmp_path))
        assert reread.cached(default_cfg).summary() == default_result.summary()
        assert reread.cached(fast_cfg).summary() == fast_result.summary()

    def test_gpu_config_and_budget_participate(self, config, run_config):
        base_key = ResultStore.key_for(run_config, config, 1000)
        other_gpu = GPUConfig(num_smx=7)
        assert ResultStore.key_for(run_config, other_gpu, 1000) != base_key
        assert ResultStore.key_for(run_config, config, 2000) != base_key

    def test_schema_version_participates(self, config, run_config, monkeypatch):
        before = ResultStore.key_for(run_config, config, 1000)
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", store_mod.SCHEMA_VERSION + 1)
        assert ResultStore.key_for(run_config, config, 1000) != before


class TestRoundTrip:
    def test_save_load_summary_identical(self, tmp_path, run_config):
        runner = Runner()
        result = runner.run(run_config)
        store = open_store(tmp_path)
        key = store.key_for(run_config, runner.config, runner.max_events)
        store.save(key, result)
        assert store.contains(key)
        loaded = open_store(tmp_path).load(key)
        assert loaded is not None
        assert loaded.summary() == result.summary()
        assert loaded.makespan == result.makespan
        assert loaded.app_name == result.app_name
        # Figure inputs round-trip too, not just headline metrics.
        assert len(loaded.stats.trace) == len(result.stats.trace)
        assert loaded.stats.launch_times == result.stats.launch_times
        assert loaded.stats.smx_occupancy == result.stats.smx_occupancy

    def test_missing_key_is_none(self, tmp_path):
        assert open_store(tmp_path).load("ab" * 32) is None

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path, run_config):
        runner = Runner()
        store = open_store(tmp_path)
        key = store.key_for(run_config, runner.config, runner.max_events)
        store.save(key, runner.run(run_config))
        path = store._path(key)
        path.write_text("{ not json")
        assert store.load(key) is None
        assert not path.exists()

    def test_schema_bump_invalidates_stale_entries(
        self, tmp_path, run_config, monkeypatch
    ):
        runner = Runner()
        store = open_store(tmp_path)
        old_key = store.key_for(run_config, runner.config, runner.max_events)
        store.save(old_key, runner.run(run_config))
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", store_mod.SCHEMA_VERSION + 1)
        # The new key cannot see the old entry...
        new_key = store.key_for(run_config, runner.config, runner.max_events)
        assert new_key != old_key
        assert store.load(new_key) is None
        # ...and even a reader holding the stale key rejects the payload.
        assert store.load(old_key) is None


class TestMaintenance:
    def test_stats_and_clear(self, tmp_path, run_config):
        runner = Runner()
        store = open_store(tmp_path)
        empty = store.stats()
        assert empty.entries == 0 and empty.total_bytes == 0
        result = runner.run(run_config)
        store.save(store.key_for(run_config, runner.config, runner.max_events), result)
        other = RunConfig(benchmark=FAST, scheme="flat")
        store.save(store.key_for(other, runner.config, runner.max_events), runner.run(other))
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.ENV_CACHE_DIR, str(tmp_path / "elsewhere"))
        assert ResultStore().root == tmp_path / "elsewhere"
        monkeypatch.delenv(store_mod.ENV_CACHE_DIR)
        assert str(ResultStore().root) == store_mod.DEFAULT_CACHE_DIR


class TestRunnerIntegration:
    def test_memory_then_disk_then_simulate(self, tmp_path, run_config):
        first = Runner(store=open_store(tmp_path))
        result = first.run(run_config)
        # A second runner (fresh process stand-in) answers from disk.
        REGISTRY.counters.pop("runner.disk_hits", None)
        second = Runner(store=open_store(tmp_path))
        loaded = second.run(run_config)
        assert loaded.summary() == result.summary()
        assert REGISTRY.counters.get("runner.disk_hits", 0) == 1
        # The disk hit was promoted to memory: third call touches no disk.
        REGISTRY.counters.pop("runner.disk_hits", None)
        second.run(run_config)
        assert REGISTRY.counters.get("runner.disk_hits", 0) == 0

    def test_cached_probe_does_not_simulate(self, tmp_path, run_config):
        warm = Runner(store=open_store(tmp_path))
        warm.run(run_config)
        probe = Runner(store=open_store(tmp_path))
        assert probe.cached(run_config) is not None
        assert probe.cached(RunConfig(benchmark=FAST, scheme="dtbl")) is None

    def test_no_store_by_default(self, run_config):
        runner = Runner()
        assert runner.store is None

    def test_trace_interval_not_conflated(self, tmp_path):
        """Regression: runs differing only in trace_interval are distinct."""
        runner = Runner(store=open_store(tmp_path))
        coarse = runner.run(RunConfig(benchmark=FAST, scheme="flat"))
        fine = runner.run(
            RunConfig(benchmark=FAST, scheme="flat", trace_interval=100.0)
        )
        assert coarse is not fine
        assert len(fine.stats.trace) > len(coarse.stats.trace)
        # And the memory-cache key separates them as well.
        assert (
            RunConfig(benchmark=FAST, scheme="flat").key()
            != RunConfig(benchmark=FAST, scheme="flat", trace_interval=100.0).key()
        )
