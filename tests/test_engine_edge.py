"""Edge-case tests for the simulator engine."""

import numpy as np
import pytest

from repro.core.policies import AlwaysLaunchPolicy, DTBLPolicy
from repro.errors import SimulationError
from repro.sim.config import GPUConfig, small_debug_gpu
from repro.sim.engine import GPUSimulator
from repro.sim.instances import KernelState
from repro.sim.kernel import Application, ChildRequest, KernelSpec

from tests.conftest import make_dp_app


def run(app, policy=None, config=None, **kwargs):
    sim = GPUSimulator(config=config or small_debug_gpu(), policy=policy, **kwargs)
    return sim.run(app), sim


class TestDegenerateGrids:
    def test_single_thread_kernel(self):
        spec = KernelSpec(
            name="one", threads_per_cta=32, thread_items=np.array([5], dtype=np.int64)
        )
        result, _ = run(Application(name="one", kernels=[spec]))
        assert result.makespan > 0

    def test_zero_item_threads_still_cost_init(self):
        spec = KernelSpec(
            name="idle", threads_per_cta=32, thread_items=np.zeros(64, dtype=np.int64)
        )
        result, sim = run(Application(name="idle", kernels=[spec]))
        assert result.makespan >= sim.cta_init_cycles

    def test_child_grid_smaller_than_cta(self):
        """A child with fewer items than cta_threads shrinks its CTA."""
        spec = KernelSpec(
            name="p",
            threads_per_cta=32,
            thread_items=np.ones(32, dtype=np.int64),
            child_requests={0: ChildRequest(name="c", items=5, cta_threads=256)},
        )
        result, _ = run(
            Application(name="p", kernels=[spec]), policy=AlwaysLaunchPolicy()
        )
        child = [r for r in result.stats.kernels.values() if r.is_child][0]
        assert child.num_ctas == 1

    def test_at_fraction_one_fires_at_end(self):
        app = make_dp_app(at_fraction=1.0, base_items=16, child_every=8)
        result, sim = run(app, policy=AlwaysLaunchPolicy())
        assert result.stats.child_kernels_launched == 8
        assert sim._unfinished_kernels == 0

    def test_request_on_last_thread_of_partial_warp(self):
        items = np.ones(40, dtype=np.int64)  # second warp has 8 threads
        spec = KernelSpec(
            name="p",
            threads_per_cta=64,
            thread_items=items,
            child_requests={39: ChildRequest(name="c", items=16, cta_threads=32)},
        )
        result, _ = run(
            Application(name="p", kernels=[spec]), policy=AlwaysLaunchPolicy()
        )
        assert result.stats.child_kernels_launched == 1


class TestStreamPressure:
    def test_more_streams_than_hwqs_completes(self):
        # 64 children on a 4-HWQ debug GPU: streams queue for HWQs.
        app = make_dp_app(threads=64, child_every=1, child_items=40)
        result, sim = run(app, policy=AlwaysLaunchPolicy())
        assert result.stats.child_kernels_launched == 64
        assert sim.gmu.drained()

    def test_queuing_latency_reported_under_hwq_pressure(self):
        app = make_dp_app(threads=64, child_every=1, child_items=40)
        result, _ = run(app, policy=AlwaysLaunchPolicy())
        assert result.stats.mean_child_queuing_latency > 0


class TestNestedLaunching:
    def test_nested_depth_two_with_dtbl(self):
        app = make_dp_app(nested=True, child_every=8)
        result, sim = run(app, policy=DTBLPolicy(0))
        depths = {r.depth for r in result.stats.kernels.values()}
        assert depths == {0, 1, 2}
        assert sim.launch_unit.kernels_submitted == 0

    def test_suspended_parent_releases_hwq(self):
        """A kernel waiting only on children must not hold a HWQ."""
        app = make_dp_app(threads=32, child_every=4, child_items=64)
        result, sim = run(app, policy=AlwaysLaunchPolicy())
        root = sim.stats.kernels[0]
        # By completion the GMU must be fully drained.
        assert sim.gmu.num_bound == 0
        assert root.completion_time == result.makespan


class TestHostSequencing:
    def test_three_root_kernels_run_in_order(self):
        spec = KernelSpec(
            name="k", threads_per_cta=32, thread_items=np.ones(32, dtype=np.int64)
        )
        app = Application(name="seq", kernels=[spec] * 3)
        result, _ = run(app)
        roots = sorted(
            (r for r in result.stats.kernels.values() if not r.is_child),
            key=lambda r: r.kernel_id,
        )
        assert len(roots) == 3
        for prev, cur in zip(roots, roots[1:]):
            assert cur.arrival_time >= prev.completion_time

    def test_children_of_earlier_root_finish_before_next_root(self):
        dp = make_dp_app(threads=32, child_every=4)
        spec2 = KernelSpec(
            name="tail", threads_per_cta=32, thread_items=np.ones(32, dtype=np.int64)
        )
        app = Application(name="seq", kernels=[dp.kernels[0], spec2])
        result, _ = run(app, policy=AlwaysLaunchPolicy())
        tail = [r for r in result.stats.kernels.values() if r.name == "tail"][0]
        children = [r for r in result.stats.kernels.values() if r.is_child]
        assert tail.arrival_time >= max(c.completion_time for c in children)


class TestBudgetsAndMetrics:
    def test_event_budget_exhaustion_raises(self):
        app = make_dp_app(threads=256, child_every=1)
        with pytest.raises(SimulationError):
            GPUSimulator(
                config=small_debug_gpu(),
                policy=AlwaysLaunchPolicy(),
                max_events=50,
            ).run(app)

    def test_items_per_thread_normalizes_twarp(self):
        app_ipt1 = Application(
            name="a",
            kernels=[
                KernelSpec(
                    name="p",
                    threads_per_cta=32,
                    thread_items=np.ones(32, dtype=np.int64),
                    child_requests={
                        0: ChildRequest(
                            name="c", items=64, cta_threads=32, items_per_thread=4
                        )
                    },
                )
            ],
        )
        _, sim = run(app_ipt1, policy=AlwaysLaunchPolicy())
        assert sim.metrics.twarp == pytest.approx(sim.metrics.tcta / 4)

    def test_full_k20_config_micro_run(self):
        app = make_dp_app(threads=128, child_every=4)
        result, _ = run(app, policy=AlwaysLaunchPolicy(), config=GPUConfig())
        assert result.stats.child_kernels_launched == 32

    def test_rerunning_same_simulator_resets_state(self):
        sim = GPUSimulator(config=small_debug_gpu(), policy=AlwaysLaunchPolicy())
        first = sim.run(make_dp_app())
        second = sim.run(make_dp_app())
        assert first.makespan == second.makespan
        assert sim.metrics.n == 0
