"""Tests for the GPU-scaling extension experiment."""

import pytest

from repro.experiments import EXTRA_EXPERIMENTS
from repro.experiments.extra_gpu_scaling import run as gpu_scaling, scaled_config


def test_registered():
    assert "gpu-scaling" in EXTRA_EXPERIMENTS


def test_scaled_config_rounds_and_clamps():
    half = scaled_config(0.5, 0.5)
    assert half.num_smx == 6
    assert half.num_hwq == 16
    tiny = scaled_config(0.01, 0.01)
    assert tiny.num_smx == 1
    assert tiny.num_hwq == 1


def test_spawn_advantage_persists_across_scales():
    result = gpu_scaling(benchmarks=("GC-citation",))
    assert len(result.rows) == 3
    for row in result.rows:
        assert row[4] > 1.0  # SPAWN / Baseline stays above one
