"""Structural tests for each workload's DP shape (Table I semantics)."""

import numpy as np
import pytest

from repro.workloads import amr, bfs, get_benchmark, join, mandelbrot, matmul, seqalign
from repro.workloads.graphs import bfs_levels


class TestBFSStructure:
    def test_one_kernel_per_level(self):
        app = bfs.build("citation", variant="dp", seed=1)
        levels = bfs._levels("citation", 1)
        assert len(app.kernels) == len(levels)

    def test_heavy_vertices_become_requests(self):
        graph = bfs.build.__globals__["_graph"]("citation", 1)
        app = bfs.build("citation", variant="dp", seed=1)
        total_requests = sum(k.num_child_requests() for k in app.kernels)
        heavy = 0
        for level in bfs._levels("citation", 1):
            heavy += int((graph.degrees[np.asarray(level)] > bfs.MIN_OFFLOAD).sum())
        assert total_requests == heavy

    def test_request_items_equal_vertex_degree(self):
        graph = bfs._graph("citation", 1)
        app = bfs.build("citation", variant="dp", seed=1)
        for spec in app.kernels:
            for reqs in spec.child_requests.values():
                for req in reqs:
                    v = int(req.name.rsplit("v", 1)[1])
                    assert req.items == graph.degree(v)

    def test_grid_stride_spreads_at_fractions(self):
        app = bfs.build("graph500", variant="dp", seed=1)
        fractions = {
            req.at_fraction
            for spec in app.kernels
            for reqs in spec.child_requests.values()
            for req in reqs
        }
        assert len(fractions) > 1


class TestAMRStructure:
    def test_nested_requests_only_on_hottest_cells(self):
        app = amr.build(variant="dp", seed=1)
        nested_parents = 0
        total = 0
        for spec in app.kernels:
            for reqs in spec.child_requests.values():
                for req in reqs:
                    total += 1
                    if req.nested:
                        nested_parents += 1
        assert 0 < nested_parents < total

    def test_time_steps_repeat_refinement(self):
        app = amr.build(variant="dp", seed=1)
        assert len(app.kernels) == amr.TIME_STEPS
        counts = [k.num_child_requests() for k in app.kernels]
        assert len(set(counts)) == 1  # same refined cells every step

    def test_refinement_size_ramp(self):
        refined, fine, deep = amr._refinement(1)
        assert fine.min() >= amr.MIN_FINE_ITEMS
        assert fine.max() <= amr.MAX_FINE_ITEMS
        assert fine.max() > 10 * np.median(fine)  # steep concentration


class TestJoinStructure:
    def test_passes_partition_buckets(self):
        app = join.build("uniform", variant="dp", seed=1)
        assert len(app.kernels) == join.PASSES
        total_requests = sum(k.num_child_requests() for k in app.kernels)
        matches = join._matches("uniform", 1)
        assert total_requests == int((matches > join.MIN_OFFLOAD).sum())

    def test_uniform_is_balanced_gaussian_is_skewed(self):
        uniform = join._matches("uniform", 1)
        gaussian = join._matches("gaussian", 1)
        assert uniform.max() / uniform.mean() < 1.5
        assert gaussian.max() / gaussian.mean() > 2.0

    def test_flat_has_thread_per_bucket(self):
        app = join.build("uniform", variant="flat", seed=1)
        assert len(app.kernels) == 1
        assert app.kernels[0].num_threads == join.NUM_BUCKETS


class TestMandelStructure:
    def test_block_items_come_from_real_escape_counts(self):
        items = mandelbrot._block_items(1)
        blocks = (mandelbrot.WIDTH // mandelbrot.BLOCK) * (
            mandelbrot.HEIGHT // mandelbrot.BLOCK
        )
        assert items.size == blocks
        # Interior blocks saturate at MAX_ITERS; exterior escape quickly.
        peak = mandelbrot.BLOCK**2 * mandelbrot.MAX_ITERS // mandelbrot.ITERS_PER_ITEM
        assert items.max() <= peak
        assert items.max() > 20 * items.min()

    def test_viewport_jitter_changes_workload(self):
        assert not np.array_equal(
            mandelbrot._block_items(1), mandelbrot._block_items(2)
        )


class TestMMStructure:
    def test_child_thread_per_column(self):
        """Child grids approximate one thread per multiplier column."""
        app = matmul.build("small", variant="dp", seed=1)
        for spec in app.kernels:
            for reqs in spec.child_requests.values():
                for req in reqs:
                    # items_per_thread uses floor division, so the thread
                    # count can overshoot COLUMNS by the rounding slack.
                    assert req.num_threads <= 2 * matmul.COLUMNS

    def test_large_input_has_more_work(self):
        small = matmul.build("small", variant="flat", seed=1)
        large = matmul.build("large", variant="flat", seed=1)
        assert large.flat_items > small.flat_items


class TestSAStructure:
    def test_batches_partition_reads(self):
        app = seqalign.build("thaliana", variant="dp", seed=1)
        assert len(app.kernels) == seqalign.BATCHES
        cands = seqalign._candidates("thaliana", 1)
        total_requests = sum(k.num_child_requests() for k in app.kernels)
        assert total_requests == int((cands > seqalign.MIN_OFFLOAD).sum())

    def test_thaliana_heavier_than_elegans(self):
        thaliana = seqalign._candidates("thaliana", 1)
        elegans = seqalign._candidates("elegans", 1)
        assert thaliana.max() > elegans.max()

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            seqalign.build("nope")
        with pytest.raises(ValueError):
            join.build("nope")
        with pytest.raises(ValueError):
            matmul.build("nope")


class TestBenchmarkWiring:
    @pytest.mark.parametrize(
        "name,n_kernels",
        [("JOIN-uniform", 2), ("SA-thaliana", 3), ("AMR", 3), ("Mandel", 2)],
    )
    def test_dp_kernel_counts(self, name, n_kernels):
        assert len(get_benchmark(name).dp(1).kernels) == n_kernels

    def test_traversal_level_sizes_match_graph(self):
        bench = get_benchmark("BFS-graph500")
        app = bench.flat(1)
        graph = bfs._graph("graph500", 1)
        levels = bfs_levels(graph, int(np.argmax(graph.degrees)))
        for spec, level in zip(app.kernels, levels):
            assert spec.num_threads == len(level)
