#!/usr/bin/env python
"""Inspect SPAWN's Algorithm 1 decisions, estimate by estimate.

Runs AMR under SPAWN with decision tracing enabled and prints a sample of
the controller's t_child / t_parent estimates: the bootstrap launches, the
declines of lightweight refinements, and the launches of heavyweight ones.
Also demonstrates using the SpawnController standalone, outside the
simulator, as a library component.

Run:  python examples/controller_inspection.py
"""

from repro import CCQS, GPUSimulator, MetricsMonitor, SpawnController, SpawnPolicy
from repro.harness.report import format_table
from repro.workloads import get_benchmark


def traced_run() -> None:
    policy = SpawnPolicy(keep_trace=True)
    sim = GPUSimulator(policy=policy)
    result = sim.run(get_benchmark("AMR").dp(seed=1))

    trace = policy.controller.trace
    bootstrap = [t for t in trace if t.t_child == 0]
    declines = [t for t in trace if not t.launched]
    launches = [t for t in trace if t.launched and t.t_child > 0]

    print(f"AMR under SPAWN: makespan={result.makespan:.0f} cycles")
    print(
        f"decisions={len(trace)}  bootstrap={len(bootstrap)}  "
        f"launched={len(launches)}  declined={len(declines)}"
    )

    def sample(entries, label, k=5):
        rows = [
            (
                f"{t.time:.0f}",
                t.x,
                t.n_before,
                f"{t.t_child:.0f}",
                f"{t.t_parent:.0f}",
            )
            for t in entries[:k]
        ]
        print()
        print(
            format_table(
                ["cycle", "x (CTAs)", "n (CCQS)", "t_child est", "t_parent est"],
                rows,
                title=label,
            )
        )

    sample(declines, "sample declined launches (t_child > t_parent)")
    sample(launches, "sample approved launches (t_child <= t_parent)")


def standalone_controller() -> None:
    """Drive Algorithm 1 by hand, no simulator involved."""
    monitor = MetricsMonitor(window_cycles=1024)
    controller = SpawnController(
        ccqs=CCQS(monitor), launch_overhead_cycles=1721 + 20210
    )

    # Bootstrap: with no completed child CTA, everything launches.
    assert controller.decide(time=0.0, num_ctas=4, workload_items=10)

    # Teach the controller a throughput history: 8 concurrent CTAs of
    # 500 cycles each, then watch it discriminate by workload.
    for _ in range(8):
        monitor.on_cta_started(0.0)
    monitor.advance(1024.0)
    for i in range(4):
        monitor.on_cta_finished(1024.0 + i, exec_time=500.0, items_per_thread=1)

    small = controller.decide(time=2000.0, num_ctas=1, workload_items=8)
    large = controller.decide(time=2000.0, num_ctas=4, workload_items=5000)
    print()
    print(f"standalone controller: 8-item workload -> {'launch' if small else 'serial'}")
    print(f"standalone controller: 5000-item workload -> {'launch' if large else 'serial'}")


if __name__ == "__main__":
    traced_run()
    standalone_controller()
