#!/usr/bin/env python
"""Workload-distribution study: regenerate a Fig. 5 panel for one benchmark.

Sweeps the static THRESHOLD of a chosen benchmark, prints speedup over flat
against the fraction of work offloaded to child kernels, and compares the
best static point (Offline-Search) with SPAWN's dynamic behaviour.

Run:  python examples/threshold_study.py [benchmark]
      (default: SSSP-graph500)
"""

import sys

from repro.api import Runner, simulate, threshold_sweep
from repro.harness.report import format_table


def main(benchmark: str = "SSSP-graph500") -> None:
    runner = Runner()
    sweep = threshold_sweep(runner, benchmark)
    best = sweep.best()

    rows = [
        (
            point.threshold,
            f"{100 * point.offload_fraction:.0f}%",
            f"{point.speedup_over_flat:.2f}x",
            point.child_kernels,
            "<- best (Offline-Search)" if point is best else "",
        )
        for point in sweep.points
    ]
    print(
        format_table(
            ["THRESHOLD", "work offloaded", "speedup vs flat", "child kernels", ""],
            rows,
            title=f"{benchmark}: speedup vs workload distribution (Fig. 5 panel)",
        )
    )

    spawn = simulate(benchmark, "spawn", runner=runner)
    flat = simulate(benchmark, "flat", runner=runner)
    print()
    print(
        f"SPAWN (no threshold, Algorithm 1): "
        f"{100 * spawn.stats.offload_fraction:.0f}% offloaded, "
        f"{flat.makespan / spawn.makespan:.2f}x vs flat, "
        f"{spawn.stats.child_kernels_launched} child kernels"
    )
    print(
        f"Best static threshold was {best.threshold} at "
        f"{100 * best.offload_fraction:.0f}% offloaded "
        f"({best.speedup_over_flat:.2f}x) - SPAWN found its distribution "
        f"without any offline search."
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
