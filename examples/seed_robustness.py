#!/usr/bin/env python
"""Seed robustness: SPAWN's win over Baseline-DP is not a one-input artifact.

Re-generates a benchmark's synthetic input under several seeds, re-runs
Baseline-DP and SPAWN on each, and renders the speedup distributions as a
terminal bar chart (the flat implementation is the 1.0 reference line).

Run:  python examples/seed_robustness.py [benchmark] [n_seeds]
      (default: BFS-graph500, 3 seeds)
"""

import sys

from repro.api import replicate
from repro.harness.plotting import bar_chart


def main(benchmark: str = "BFS-graph500", n_seeds: str = "3") -> None:
    seeds = tuple(range(1, int(n_seeds) + 1))
    result = replicate(
        benchmark, schemes=("baseline-dp", "spawn"), seeds=seeds
    )

    labels = []
    values = []
    for scheme in ("baseline-dp", "spawn"):
        stats = result.scheme(scheme)
        for seed, speedup in zip(seeds, stats.speedups):
            labels.append(f"{scheme} seed={seed}")
            values.append(speedup)
    print(
        bar_chart(
            labels,
            values,
            reference=1.0,
            title=f"{benchmark}: speedup over flat across input seeds "
            "(| marks flat = 1.0)",
        )
    )
    print()
    for scheme in ("baseline-dp", "spawn"):
        stats = result.scheme(scheme)
        print(
            f"{scheme:12s} mean={stats.mean:.2f}x std={stats.std:.2f} "
            f"range=[{stats.min:.2f}, {stats.max:.2f}]"
        )
    if result.consistently_ordered("spawn", "baseline-dp"):
        print("\nSPAWN beat Baseline-DP on every seed.")
    else:
        print("\nSPAWN did not dominate Baseline-DP on every seed.")


if __name__ == "__main__":
    main(*sys.argv[1:3])
