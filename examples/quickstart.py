#!/usr/bin/env python
"""Quickstart: run one benchmark under flat, Baseline-DP, and SPAWN.

Simulates the BFS-graph500 benchmark (Table I) on the paper's K20m-like
GPU (Table II) under three schemes through the stable :mod:`repro.api`
façade, and prints the headline metrics the paper's evaluation revolves
around.

Run:  python examples/quickstart.py
"""

from repro.api import Runner, simulate
from repro.harness.report import format_table


def main() -> None:
    benchmark = "BFS-graph500"
    runner = Runner()  # shared two-level cache across the runs below

    # 1. The flat (non-DP) implementation: one thread per frontier vertex,
    #    every edge traversed serially in its thread.
    flat = simulate(benchmark, "flat", runner=runner)
    rows = [("flat", flat.makespan, 0, "-", "-")]

    # 2. Baseline-DP: the unmodified DP source, launching a child kernel
    #    for every vertex above the application's native THRESHOLD.
    # 3. SPAWN: the paper's runtime controller (Algorithm 1) deciding each
    #    launch from the live CCQS state.
    for scheme in ("baseline-dp", "spawn"):
        result = simulate(benchmark, scheme, runner=runner)
        rows.append(
            (
                scheme,
                result.makespan,
                result.stats.child_kernels_launched,
                f"{flat.makespan / result.makespan:.2f}x",
                f"{100 * result.stats.smx_occupancy:.1f}%",
            )
        )

    print(
        format_table(
            ["scheme", "makespan (cycles)", "child kernels", "speedup vs flat", "occupancy"],
            rows,
            title=f"{benchmark} under three schemes",
            float_format="{:.0f}",
        )
    )
    print()
    base = simulate(benchmark, "baseline-dp", runner=runner)
    spawn = simulate(benchmark, "spawn", runner=runner)
    print(
        f"SPAWN launched {spawn.stats.child_kernels_launched} of "
        f"{spawn.stats.child_kernels_launched + spawn.stats.child_kernels_declined} "
        f"possible child kernels and ran "
        f"{base.makespan / spawn.makespan:.2f}x faster than Baseline-DP."
    )


if __name__ == "__main__":
    main()
