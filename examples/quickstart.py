#!/usr/bin/env python
"""Quickstart: run one benchmark under flat, Baseline-DP, and SPAWN.

Builds the BFS-graph500 benchmark (Table I), simulates it on the paper's
K20m-like GPU (Table II) under three schemes, and prints the headline
metrics the paper's evaluation revolves around.

Run:  python examples/quickstart.py
"""

from repro import GPUSimulator, SpawnPolicy, StaticThresholdPolicy
from repro.harness.report import format_table
from repro.workloads import get_benchmark


def main() -> None:
    bench = get_benchmark("BFS-graph500")

    rows = []

    # 1. The flat (non-DP) implementation: one thread per frontier vertex,
    #    every edge traversed serially in its thread.
    flat = GPUSimulator().run(bench.flat(seed=1))
    rows.append(("flat", flat.makespan, 0, "-", "-"))

    # 2. Baseline-DP: the unmodified DP source, launching a child kernel
    #    for every vertex above the application's native THRESHOLD.
    base = GPUSimulator(policy=StaticThresholdPolicy(bench.default_threshold)).run(
        bench.dp(seed=1)
    )
    rows.append(
        (
            "baseline-dp",
            base.makespan,
            base.stats.child_kernels_launched,
            f"{flat.makespan / base.makespan:.2f}x",
            f"{100 * base.stats.smx_occupancy:.1f}%",
        )
    )

    # 3. SPAWN: the paper's runtime controller (Algorithm 1) deciding each
    #    launch from the live CCQS state.
    spawn = GPUSimulator(policy=SpawnPolicy()).run(bench.dp(seed=1))
    rows.append(
        (
            "spawn",
            spawn.makespan,
            spawn.stats.child_kernels_launched,
            f"{flat.makespan / spawn.makespan:.2f}x",
            f"{100 * spawn.stats.smx_occupancy:.1f}%",
        )
    )

    print(
        format_table(
            ["scheme", "makespan (cycles)", "child kernels", "speedup vs flat", "occupancy"],
            rows,
            title="BFS-graph500 under three schemes",
            float_format="{:.0f}",
        )
    )
    print()
    print(
        f"SPAWN launched {spawn.stats.child_kernels_launched} of "
        f"{spawn.stats.child_kernels_launched + spawn.stats.child_kernels_declined} "
        f"possible child kernels and ran "
        f"{base.makespan / spawn.makespan:.2f}x faster than Baseline-DP."
    )


if __name__ == "__main__":
    main()
