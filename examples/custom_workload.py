#!/usr/bin/env python
"""Build a custom dynamic-parallelism application with the public API.

Models a toy "particle sort" kernel: 2,048 spatial bins, most holding a few
particles, a heavy tail holding thousands (a lognormal distribution).  Each
parent thread owns one bin; heavy bins carry a ChildRequest so the runtime
policy can offload them to a child kernel.

The example runs the same application under every launch policy the library
ships and under both stream (SWQ) assignment modes — the full decision
surface a CUDA programmer would otherwise explore by hand.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import (
    Application,
    AlwaysLaunchPolicy,
    ChildRequest,
    DTBLPolicy,
    GPUSimulator,
    KernelSpec,
    NeverLaunchPolicy,
    PerParentCTAStream,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.harness.report import format_table
from repro.workloads.base import AddressAllocator

NUM_BINS = 2048
THRESHOLD = 64  # structural: below this a child kernel can't fill a warp


def build_app(seed: int = 7) -> Application:
    rng = np.random.default_rng(seed)
    particles = np.clip(
        np.round(np.exp(rng.normal(2.5, 1.3, size=NUM_BINS))), 1, 4096
    ).astype(np.int64)

    alloc = AddressAllocator()
    particle_base = alloc.alloc(int(particles.sum()) * 16)
    offsets = np.zeros(NUM_BINS, dtype=np.int64)
    np.cumsum(particles[:-1], out=offsets[1:])
    bases = particle_base + offsets * 16

    items = np.ones(NUM_BINS, dtype=np.int64)  # bin-header bookkeeping
    requests = {}
    for bin_id in range(NUM_BINS):
        count = int(particles[bin_id])
        if count > THRESHOLD:
            requests[bin_id] = ChildRequest(
                name=f"sort-bin{bin_id}",
                items=count,
                cta_threads=64,
                cycles_per_item=10.0,
                accesses_per_item=1.0,
                mem_base=int(bases[bin_id]),
                mem_stride=16,
            )
        else:
            items[bin_id] += count

    spec = KernelSpec(
        name="particle-sort",
        threads_per_cta=128,
        thread_items=items,
        cycles_per_item=10.0,
        accesses_per_item=1.0,
        mem_bases=bases,
        mem_stride=16,
        child_requests=requests,
    )
    return Application(
        name="particle-sort", kernels=[spec], flat_items=int(particles.sum())
    )


def main() -> None:
    app = build_app()
    policies = [
        NeverLaunchPolicy(),
        AlwaysLaunchPolicy(),
        StaticThresholdPolicy(256),
        SpawnPolicy(),
        DTBLPolicy(THRESHOLD),
    ]
    rows = []
    for policy in policies:
        result = GPUSimulator(policy=policy).run(app)
        rows.append(
            (
                policy.name,
                int(result.makespan),
                result.stats.child_kernels_launched,
                f"{100 * result.stats.offload_fraction:.0f}%",
                f"{100 * result.stats.smx_occupancy:.1f}%",
            )
        )
    print(
        format_table(
            ["policy", "makespan", "child kernels", "offloaded", "occupancy"],
            rows,
            title="particle-sort: launch policy comparison",
        )
    )

    # Stream assignment matters too: serializing all of a parent CTA's
    # children on one SWQ (CUDA's default) throttles concurrency (Fig. 8).
    serialized = GPUSimulator(
        policy=AlwaysLaunchPolicy(), stream_policy=PerParentCTAStream()
    ).run(app)
    concurrent = GPUSimulator(policy=AlwaysLaunchPolicy()).run(app)
    print()
    print(
        f"per-child streams: {concurrent.makespan:.0f} cycles vs "
        f"per-parent-CTA streams: {serialized.makespan:.0f} cycles "
        f"({serialized.makespan / concurrent.makespan:.2f}x slower serialized)"
    )


if __name__ == "__main__":
    main()
